"""Figure 7: the distribution of synthesis times (paper §5.3).

The paper plots the cumulative percentage of 7-event x86 Forbid tests
found against synthesis time, observing that 98% arrive within 6% of the
total run.  We reproduce the same curve from the per-test discovery
timestamps the synthesizer records, at a laptop-sized bound, and render
it as an ASCII plot plus the underlying series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.memo import MemoModel
from ..models.registry import get_model
from ..synth.generate import EnumerationSpace
from ..synth.synthesis import SynthesisResult, synthesize_forbid

__all__ = ["Fig7Series", "run_fig7", "format_fig7"]


@dataclass
class Fig7Series:
    """Cumulative discovery curve for one synthesis run."""

    arch: str
    n_events: int
    total_time: float
    discovery_times: list[float] = field(default_factory=list)

    def cumulative(self, points: int = 20) -> list[tuple[float, float]]:
        """(time fraction, % tests found) samples of the curve."""
        if not self.discovery_times:
            return [(0.0, 0.0), (1.0, 0.0)]
        out = []
        total = len(self.discovery_times)
        for i in range(points + 1):
            t = self.total_time * i / points
            found = sum(1 for d in self.discovery_times if d <= t)
            out.append((t / self.total_time if self.total_time else 0.0,
                        100.0 * found / total))
        return out

    def half_found_fraction(self) -> float:
        """Fraction of total time at which 50% of tests were found."""
        if not self.discovery_times:
            return 0.0
        mid = sorted(self.discovery_times)[len(self.discovery_times) // 2]
        return mid / self.total_time if self.total_time else 0.0


def run_fig7(
    arch: str = "x86",
    n_events: int = 4,
    time_budget: float | None = 300.0,
    space: EnumerationSpace | None = None,
) -> Fig7Series:
    """Regenerate the Figure 7 curve at a laptop-sized bound.

    Consistency checks run through the campaign engine's
    :class:`~repro.engine.memo.MemoModel`, so weakening probes that
    revisit an execution are deduplicated in memory.  The memo is
    deliberately *not* backed by the persistent cache here: the figure
    *is* a synthesis-time distribution, and serving verdicts from disk
    would make the measured curve meaningless.
    """
    result: SynthesisResult = synthesize_forbid(
        arch,
        n_events,
        time_budget=time_budget,
        space=space,
        model=MemoModel(get_model(arch)),
        baseline=MemoModel(get_model(arch, tm=False)),
    )
    return Fig7Series(
        arch=arch,
        n_events=n_events,
        total_time=result.elapsed,
        discovery_times=result.discovery_times,
    )


def format_fig7(series: Fig7Series, width: int = 60, height: int = 12) -> str:
    """ASCII rendering of the cumulative discovery curve."""
    samples = series.cumulative(points=width)
    lines = [
        f"Fig 7 analogue: {series.arch} |E|={series.n_events} Forbid "
        f"tests found vs time ({len(series.discovery_times)} tests, "
        f"{series.total_time:.1f}s total)"
    ]
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for x, (frac, pct) in enumerate(samples):
        y = round(pct / 100.0 * height)
        grid[height - y][x] = "*"
    for i, row in enumerate(grid):
        label = f"{100 - i * 100 // height:>4}% |"
        lines.append(label + "".join(row))
    lines.append("      +" + "-" * width + "> time")
    lines.append(
        f"      50% of tests found within "
        f"{100 * series.half_found_fraction():.0f}% of total synthesis time"
    )
    return "\n".join(lines)
