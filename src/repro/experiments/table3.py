"""Table 3: the key constraints on π for lock elision (paper §8.3).

The table is definitional; this module renders the concrete expansions
the checker actually uses (so the printed table is guaranteed to match
the executable semantics in :mod:`repro.metatheory.lockelision`) together
with the three side constraints (LockVar, TxnIntro, TxnReadsLockFree).
"""

from __future__ import annotations

from ..metatheory.lockelision import LOCK_VAR, _expand_lock, _expand_unlock

__all__ = ["format_table3"]


def _describe(events, rmw, ctrl) -> str:
    parts = []
    for i, event in enumerate(events):
        tags = ",".join(sorted(event.labels))
        name = f"{event.kind.value}"
        if event.loc:
            name += f" {event.loc}"
        if tags:
            name += f"[{tags}]"
        parts.append(name)
    notes = []
    if rmw:
        notes.append("rmw")
    if ctrl:
        notes.append("ctrl")
    text = "; ".join(parts)
    return f"{text}" + (f"  ({', '.join(notes)})" if notes else "")


def format_table3() -> str:
    lines = [
        "Table 3: key constraints on pi for lock elision",
        "",
        f"{'Source':<8}{'x86':<34}{'Power':<38}",
    ]
    for source, arch_args in (
        ("L", [("x86", False), ("power", False)]),
        ("U", [("x86", None), ("power", None)]),
    ):
        cells = []
        for arch, fixed in arch_args:
            if source == "L":
                events, rmw, ctrl, _ = _expand_lock(arch, fixed)
                cells.append(_describe(events, rmw, ctrl))
            else:
                cells.append(_describe(_expand_unlock(arch), [], []))
        lines.append(f"{source:<8}{cells[0]:<34}{cells[1]:<38}")

    lines.append("")
    lines.append(f"{'Source':<8}{'ARMv8':<34}{'ARMv8 (fixed)':<38}")
    for source in ("L", "U"):
        cells = []
        for fixed in (False, True):
            if source == "L":
                events, rmw, ctrl, _ = _expand_lock("armv8", fixed)
                cells.append(_describe(events, rmw, ctrl))
            else:
                cells.append(_describe(_expand_unlock("armv8"), [], []))
        lines.append(f"{source:<8}{cells[0]:<34}{cells[1]:<38}")

    lines.extend(
        [
            "",
            "Lt -> R m   (a plain read of the lock, inside the transaction)",
            "Ut -> (nothing)",
            "",
            "Side constraints:",
            f"  LockVar:          the introduced accesses all target '{LOCK_VAR}',",
            "                    which no other event accesses",
            "  TxnIntro:         a transactionalised CR becomes one transaction",
            "  TxnReadsLockFree: the Lt read never observes an L write",
        ]
    )
    return "\n".join(lines)
