"""Section 9 ablation: our Power TM model vs. the atomicity-only model.

Dongol et al.'s models "capture only the atomicity of transactions, not
the ordering".  This experiment quantifies the difference: over the full
enumerated execution space, count the executions our Power model forbids
that the atomicity-only model allows, and classify which TM axiom is
responsible (tfence ordering, tprop1/tprop2 propagation, thb
serialisation, TxnOrder).  The catalogued ``dongol_gap`` execution is the
paper's own §9 witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.execution import Execution
from ..models.dongol import DongolPower
from ..models.power import Power
from ..synth.generate import EnumerationSpace, enumerate_executions

__all__ = ["AblationReport", "run_ablation", "format_ablation"]


@dataclass
class AblationReport:
    """Divergence between the full and atomicity-only Power TM models."""

    n_events: int
    total: int = 0
    both_allow: int = 0
    both_forbid: int = 0
    only_ours_forbids: int = 0
    only_dongol_forbids: int = 0
    by_axiom: dict[str, int] = field(default_factory=dict)
    examples: list[Execution] = field(default_factory=list)


def run_ablation(
    n_events: int = 3,
    space: EnumerationSpace | None = None,
    max_examples: int = 5,
) -> AblationReport:
    """Compare the two models over the bounded execution space."""
    ours = Power()
    theirs = DongolPower()
    space = space or EnumerationSpace.for_arch(
        "power", n_events, require_txn=True
    )
    report = AblationReport(n_events=n_events)
    for x in enumerate_executions(space):
        report.total += 1
        ok_ours = ours.consistent(x)
        ok_theirs = theirs.consistent(x)
        if ok_ours and ok_theirs:
            report.both_allow += 1
        elif not ok_ours and not ok_theirs:
            report.both_forbid += 1
        elif ok_ours:
            report.only_dongol_forbids += 1
        else:
            report.only_ours_forbids += 1
            for name in ours.failed_axioms(x):
                report.by_axiom[name] = report.by_axiom.get(name, 0) + 1
            if len(report.examples) < max_examples:
                report.examples.append(x)
    return report


def format_ablation(report: AblationReport) -> str:
    lines = [
        f"Power TM vs atomicity-only (Dongol et al.), |E|<={report.n_events}, "
        f"{report.total} executions:",
        f"  both allow:            {report.both_allow}",
        f"  both forbid:           {report.both_forbid}",
        f"  only ours forbids:     {report.only_ours_forbids}  "
        f"(the ordering guarantees their model misses)",
        f"  only theirs forbids:   {report.only_dongol_forbids}  (must be 0: "
        f"ours is strictly stronger)",
    ]
    if report.by_axiom:
        lines.append("  responsible axioms in our model:")
        for name, count in sorted(report.by_axiom.items()):
            lines.append(f"    {name:<16} {count}")
    return "\n".join(lines)
