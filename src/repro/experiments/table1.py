"""Table 1: synthesizing and running conformance tests (paper §5.3).

For each architecture and event bound, synthesize the Forbid and Allow
suites and run both against the simulated hardware:

* x86 suites run on the operational TSO+HTM machine;
* Power suites run on the no-LB POWER8 oracle.

The columns mirror the paper's: synthesis time, test counts (T), seen (S)
and not-seen (¬S) on hardware.  The paper's headline shapes must hold:
**no Forbid test is ever observed**, most Allow tests are, and the unseen
Power Allow tests are dominated by load-buffering shapes.

The hardware-conformance sweeps run through the campaign engine
(:mod:`repro.engine`): each suite becomes a campaign against the
architecture's oracle, so ``jobs`` fans the tests out across workers and
``cache`` makes repeated table regenerations incremental.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine import CampaignItem, run_campaign
from ..engine.cache import NullCache, ResultCache
from ..engine.checkers import OracleChecker
from ..litmus.from_execution import to_litmus
from ..sim.oracle import HardwareOracle, get_oracle
from ..synth.generate import EnumerationSpace
from ..synth.synthesis import SynthesisResult, synthesize

__all__ = ["Table1Row", "Table1", "run_table1", "format_table1"]


@dataclass
class Table1Row:
    """One (architecture, event-bound) row."""

    arch: str
    n_events: int
    synthesis_time: float
    forbid_total: int
    forbid_seen: int
    allow_total: int
    allow_seen: int
    exhausted: bool
    txn_histogram: dict[int, int] = field(default_factory=dict)
    unseen_allow_lb: int = 0  # unseen Allow tests that are LB-shaped

    @property
    def forbid_unseen(self) -> int:
        return self.forbid_total - self.forbid_seen

    @property
    def allow_unseen(self) -> int:
        return self.allow_total - self.allow_seen


@dataclass
class Table1:
    rows: list[Table1Row] = field(default_factory=list)
    results: list[SynthesisResult] = field(default_factory=list)


def _is_lb_shaped(execution) -> bool:
    """Load-buffering shape: a cycle in po ∪ rf (cf. §5.3's remark that
    unobserved Power Allow tests are mostly LB-based)."""
    return not (execution.po | execution.rf_rel).is_acyclic()


def _conformance_verdicts(
    arch: str,
    n_events: int,
    kind: str,
    executions,
    oracle: HardwareOracle,
    jobs: int,
    cache: ResultCache | NullCache | None,
) -> list[bool]:
    """Run one suite against the hardware oracle through the engine.

    Each execution becomes a litmus test and one campaign item; the
    engine handles caching, worker dispatch and memoized candidate
    expansion.  Verdicts come back in suite order.
    """
    checker = OracleChecker(f"hw:{arch}:{oracle.name}", oracle)
    items = [
        CampaignItem(
            f"{arch}-{kind}-{n_events}-{i}",
            to_litmus(x, f"{arch}-{kind}-{n_events}", arch),
        )
        for i, x in enumerate(executions)
    ]
    result = run_campaign(items, [checker], jobs=jobs, cache=cache)
    return [result.verdict(item.name, checker.spec) for item in items]


def run_table1_cell(
    arch: str,
    n_events: int,
    oracle: HardwareOracle | None = None,
    time_budget: float | None = None,
    space: EnumerationSpace | None = None,
    jobs: int = 1,
    cache: ResultCache | NullCache | None = None,
) -> tuple[Table1Row, SynthesisResult]:
    """Synthesize one cell and run conformance against the hardware."""
    oracle = oracle or get_oracle(arch)
    result = synthesize(arch, n_events, time_budget=time_budget, space=space)

    forbid_seen = sum(
        _conformance_verdicts(
            arch, n_events, "forbid", result.forbid, oracle, jobs, cache
        )
    )

    allow_verdicts = _conformance_verdicts(
        arch, n_events, "allow", result.allow, oracle, jobs, cache
    )
    allow_seen = sum(allow_verdicts)
    unseen_lb = sum(
        1
        for x, seen in zip(result.allow, allow_verdicts)
        if not seen and _is_lb_shaped(x)
    )

    row = Table1Row(
        arch=arch,
        n_events=n_events,
        synthesis_time=result.elapsed,
        forbid_total=len(result.forbid),
        forbid_seen=forbid_seen,
        allow_total=len(result.allow),
        allow_seen=allow_seen,
        exhausted=result.exhausted,
        txn_histogram=result.txn_histogram,
        unseen_allow_lb=unseen_lb,
    )
    return row, result


def run_table1(
    bounds: dict[str, list[int]] | None = None,
    time_budget: float | None = 120.0,
    jobs: int = 1,
    cache: ResultCache | NullCache | None = None,
) -> Table1:
    """Regenerate Table 1 (default bounds sized for a laptop run)."""
    bounds = bounds or {"x86": [2, 3, 4], "power": [2, 3]}
    table = Table1()
    for arch, sizes in bounds.items():
        for n in sizes:
            row, result = run_table1_cell(
                arch, n, time_budget=time_budget, jobs=jobs, cache=cache
            )
            table.rows.append(row)
            table.results.append(result)
    return table


def format_table1(table: Table1) -> str:
    """Typeset in the paper's layout."""
    lines = [
        f"{'Arch':<7}{'|E|':>4}{'Synth(s)':>10}"
        f"{'Forbid T':>10}{'S':>4}{'not-S':>6}"
        f"{'Allow T':>9}{'S':>5}{'not-S':>6}{'LB?':>5}",
        "-" * 66,
    ]
    for row in table.rows:
        mark = "" if row.exhausted else "*"
        lines.append(
            f"{row.arch:<7}{row.n_events:>4}{row.synthesis_time:>10.1f}"
            f"{row.forbid_total:>9}{mark:<1}{row.forbid_seen:>4}"
            f"{row.forbid_unseen:>6}"
            f"{row.allow_total:>9}{row.allow_seen:>5}{row.allow_unseen:>6}"
            f"{row.unseen_allow_lb:>5}"
        )
    lines.append("(* = synthesis hit the time budget; counts are partial,")
    lines.append("    mirroring the paper's >2h timeout rows.  LB? counts")
    lines.append("    unseen Allow tests with load-buffering shape.)")
    return "\n".join(lines)
