"""Section 6.2: using the ARMv8 Forbid suite to catch the RTL bug.

ARM hardware does not support TM, so the paper handed the synthesized
Forbid/Allow suites to architects, who used them to find a TxnOrder
violation in an RTL prototype.  We reproduce the flow end to end: the
suite is synthesized from the ARMv8 TM model, converted to litmus tests,
and run against two register-transfer-level stand-ins — one faithful, one
with the TxnOrder axiom accidentally unenforced.  The buggy RTL observes
at least one Forbid test; the faithful one observes none.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.events import Label
from ..core.execution import Execution
from ..litmus.from_execution import to_litmus
from ..sim.oracle import ArmRtl, BuggyRtlArm
from ..synth.generate import EnumerationSpace
from ..synth.synthesis import synthesize_forbid
from ..synth.vocab import ArchVocab

__all__ = ["RtlReport", "run_rtl_check", "format_rtl", "rtl_space"]

#: A trimmed ARMv8 vocabulary: release writes (enough for the
#: TxnOrder-sensitive shapes, e.g. MP with a release writer against a
#: transactional reader) but no fences, acquire reads, or dependencies,
#: keeping the space laptop-sized at four events.
_RTL_VOCAB = ArchVocab(
    name="armv8",
    read_labels=(frozenset(),),
    write_labels=(frozenset(), frozenset({Label.REL})),
    fence_kinds=(),
    dep_kinds=(),
    rmw=False,
    downgrades={
        frozenset({Label.REL}): (frozenset(),),
    },
)


def rtl_space(n_events: int) -> EnumerationSpace:
    """The default (trimmed) enumeration space for the RTL check."""
    return EnumerationSpace(
        vocab=_RTL_VOCAB,
        n_events=n_events,
        max_threads=2,
        max_locations=2,
        max_deps=0,
        max_rmws=0,
        max_txns=1,
        require_txn=True,
    )


@dataclass
class RtlReport:
    """Outcome of running the Forbid suite against the two RTLs."""

    n_events: int
    suite_size: int
    buggy_violations: list[Execution] = field(default_factory=list)
    fixed_violations: list[Execution] = field(default_factory=list)

    @property
    def bug_found(self) -> bool:
        return bool(self.buggy_violations)


def run_rtl_check(
    n_events: int = 4,
    time_budget: float | None = 120.0,
    space: EnumerationSpace | None = None,
) -> RtlReport:
    """Synthesize the ARMv8 Forbid suite and run it on both RTLs."""
    if space is None:
        space = rtl_space(n_events)
    result = synthesize_forbid(
        "armv8", n_events, space=space, time_budget=time_budget
    )
    buggy = BuggyRtlArm()
    fixed = ArmRtl()
    report = RtlReport(n_events=n_events, suite_size=len(result.forbid))
    for x in result.forbid:
        test = to_litmus(x, "armv8-forbid", "armv8")
        if buggy.observable(test):
            report.buggy_violations.append(x)
        if fixed.observable(test):
            report.fixed_violations.append(x)
    return report


def format_rtl(report: RtlReport) -> str:
    lines = [
        f"ARMv8 RTL conformance (|E|<={report.n_events}, "
        f"{report.suite_size} Forbid tests):",
        f"  buggy RTL (TxnOrder unenforced): "
        f"{len(report.buggy_violations)} tests observed -> "
        f"{'BUG FOUND' if report.bug_found else 'no bug found'}",
        f"  fixed RTL: {len(report.fixed_violations)} tests observed "
        f"(must be 0)",
    ]
    if report.buggy_violations:
        lines.append("  first violating shape:")
        for line in report.buggy_violations[0].describe().splitlines():
            lines.append("    " + line)
    return "\n".join(lines)
