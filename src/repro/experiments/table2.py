"""Table 2: the metatheoretical results (paper §8).

Rows: monotonicity for x86/Power/ARMv8/C++, compilation of C++
transactions to the three architectures, and lock elision for
x86/Power/ARMv8/ARMv8-fixed.  A ✗ means the property holds up to the
bound; a ✓ means a counterexample was found — the paper's key row being
ARMv8 lock elision (Example 1.1), which this harness rediscovers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..metatheory.compilation import check_compilation
from ..metatheory.lockelision import check_lock_elision
from ..metatheory.monotonicity import check_monotonicity

__all__ = ["Table2Row", "run_table2", "format_table2"]


@dataclass
class Table2Row:
    """One metatheory row (property, target, bound, time, verdict)."""

    prop: str
    target: str
    n_events: int
    elapsed: float
    counterexample: bool
    exhausted: bool = True
    paper_verdict: str = ""

    @property
    def verdict(self) -> str:
        if not self.exhausted and not self.counterexample:
            return "U"  # timeout without counterexample, as in the paper
        return "yes" if self.counterexample else "no"


_PAPER = {
    ("Monotonicity", "x86"): "no (6 events)",
    ("Monotonicity", "power"): "yes (2 events)",
    ("Monotonicity", "armv8"): "yes (2 events)",
    ("Monotonicity", "cpp"): "no (6 events)",
    ("Compilation", "x86"): "no (6 events)",
    ("Compilation", "power"): "no (6 events)",
    ("Compilation", "armv8"): "no (6 events)",
    ("Lock elision", "x86"): "U (8 events, >48h)",
    ("Lock elision", "power"): "U (9 events, >48h)",
    ("Lock elision", "armv8"): "yes (7 events, 63s)",
    ("Lock elision", "armv8 (fixed)"): "U (8 events, >48h)",
}


def run_table2(
    monotonicity_bounds: dict[str, int] | None = None,
    compilation_bound: int = 3,
    time_budget: float | None = 120.0,
) -> list[Table2Row]:
    """Regenerate Table 2 at laptop-sized bounds."""
    monotonicity_bounds = monotonicity_bounds or {
        "x86": 3,
        "power": 2,
        "armv8": 2,
        "cpp": 3,
    }
    rows: list[Table2Row] = []

    for arch, bound in monotonicity_bounds.items():
        r = check_monotonicity(arch, bound, time_budget=time_budget)
        rows.append(
            Table2Row(
                "Monotonicity", arch, bound, r.elapsed,
                r.counterexample is not None, r.exhausted,
                _PAPER[("Monotonicity", arch)],
            )
        )

    for target in ("x86", "power", "armv8"):
        r = check_compilation(target, compilation_bound, time_budget=time_budget)
        rows.append(
            Table2Row(
                "Compilation", target, compilation_bound, r.elapsed,
                r.counterexample is not None, r.exhausted,
                _PAPER[("Compilation", target)],
            )
        )

    for arch, fixed in (
        ("x86", False),
        ("power", False),
        ("armv8", False),
        ("armv8", True),
    ):
        r = check_lock_elision(arch, fixed=fixed, time_budget=time_budget)
        label = f"{arch} (fixed)" if fixed else arch
        rows.append(
            Table2Row(
                "Lock elision", label, 0, r.elapsed,
                r.counterexample is not None, r.exhausted,
                _PAPER[("Lock elision", label)],
            )
        )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    lines = [
        f"{'Property':<14}{'Target':<16}{'Events':>7}{'Time':>9}"
        f"{'C-ex?':>7}   {'Paper':<20}",
        "-" * 75,
    ]
    for row in rows:
        events = str(row.n_events) if row.n_events else "-"
        lines.append(
            f"{row.prop:<14}{row.target:<16}{events:>7}"
            f"{row.elapsed:>8.1f}s{row.verdict:>7}   {row.paper_verdict:<20}"
        )
    lines.append(
        "(Power lock elision: the paper timed out >48h at |E|=9 without a"
    )
    lines.append(
        " verdict; our guided expansion finds an Example-1.1-style witness"
    )
    lines.append(
        " — see EXPERIMENTS.md for the analysis of this divergence.)"
    )
    return "\n".join(lines)
