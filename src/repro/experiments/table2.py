"""Table 2: the metatheoretical results (paper §8).

Rows: monotonicity for x86/Power/ARMv8/C++, compilation of C++
transactions to the three architectures, and lock elision for
x86/Power/ARMv8/ARMv8-fixed.  A ✗ means the property holds up to the
bound; a ✓ means a counterexample was found — the paper's key row being
ARMv8 lock elision (Example 1.1), which this harness rediscovers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.pool import parallel_map
from ..metatheory.compilation import check_compilation
from ..metatheory.lockelision import check_lock_elision
from ..metatheory.monotonicity import check_monotonicity

__all__ = ["Table2Row", "run_table2", "format_table2"]


@dataclass
class Table2Row:
    """One metatheory row (property, target, bound, time, verdict)."""

    prop: str
    target: str
    n_events: int
    elapsed: float
    counterexample: bool
    exhausted: bool = True
    paper_verdict: str = ""

    @property
    def verdict(self) -> str:
        if not self.exhausted and not self.counterexample:
            return "U"  # timeout without counterexample, as in the paper
        return "yes" if self.counterexample else "no"


_PAPER = {
    ("Monotonicity", "x86"): "no (6 events)",
    ("Monotonicity", "power"): "yes (2 events)",
    ("Monotonicity", "armv8"): "yes (2 events)",
    ("Monotonicity", "cpp"): "no (6 events)",
    ("Compilation", "x86"): "no (6 events)",
    ("Compilation", "power"): "no (6 events)",
    ("Compilation", "armv8"): "no (6 events)",
    ("Lock elision", "x86"): "U (8 events, >48h)",
    ("Lock elision", "power"): "U (9 events, >48h)",
    ("Lock elision", "armv8"): "yes (7 events, 63s)",
    ("Lock elision", "armv8 (fixed)"): "U (8 events, >48h)",
}


def _run_property_check(
    task: tuple[str, str, int, bool, float | None],
) -> Table2Row:
    """One (property, target) cell — a picklable task for the engine's
    worker pool."""
    prop, target, bound, fixed, time_budget = task
    if prop == "Monotonicity":
        r = check_monotonicity(target, bound, time_budget=time_budget)
    elif prop == "Compilation":
        r = check_compilation(target, bound, time_budget=time_budget)
    else:
        r = check_lock_elision(target, fixed=fixed, time_budget=time_budget)
        bound = 0
    label = f"{target} (fixed)" if fixed else target
    return Table2Row(
        prop, label, bound, r.elapsed,
        r.counterexample is not None, r.exhausted,
        _PAPER[(prop, label)],
    )


def run_table2(
    monotonicity_bounds: dict[str, int] | None = None,
    compilation_bound: int = 3,
    time_budget: float | None = 120.0,
    jobs: int = 1,
) -> list[Table2Row]:
    """Regenerate Table 2 at laptop-sized bounds.

    The property checks are independent, so they run through the
    engine's worker pool; ``jobs=1`` keeps the deterministic serial
    path and any worker count produces the same rows in the same order.
    """
    monotonicity_bounds = monotonicity_bounds or {
        "x86": 3,
        "power": 2,
        "armv8": 2,
        "cpp": 3,
    }
    tasks: list[tuple[str, str, int, bool, float | None]] = []
    for arch, bound in monotonicity_bounds.items():
        tasks.append(("Monotonicity", arch, bound, False, time_budget))
    for target in ("x86", "power", "armv8"):
        tasks.append(
            ("Compilation", target, compilation_bound, False, time_budget)
        )
    for arch, fixed in (
        ("x86", False),
        ("power", False),
        ("armv8", False),
        ("armv8", True),
    ):
        tasks.append(("Lock elision", arch, 0, fixed, time_budget))

    return parallel_map(_run_property_check, tasks, jobs=jobs)


def format_table2(rows: list[Table2Row]) -> str:
    lines = [
        f"{'Property':<14}{'Target':<16}{'Events':>7}{'Time':>9}"
        f"{'C-ex?':>7}   {'Paper':<20}",
        "-" * 75,
    ]
    for row in rows:
        events = str(row.n_events) if row.n_events else "-"
        lines.append(
            f"{row.prop:<14}{row.target:<16}{events:>7}"
            f"{row.elapsed:>8.1f}s{row.verdict:>7}   {row.paper_verdict:<20}"
        )
    lines.append(
        "(Power lock elision: the paper timed out >48h at |E|=9 without a"
    )
    lines.append(
        " verdict; our guided expansion finds an Example-1.1-style witness"
    )
    lines.append(
        " — see EXPERIMENTS.md for the analysis of this divergence.)"
    )
    return "\n".join(lines)
