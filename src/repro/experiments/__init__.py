"""Experiment harnesses: one module per paper table/figure."""

from .ablation import AblationReport, format_ablation, run_ablation
from .fig7 import Fig7Series, format_fig7, run_fig7
from .rtl import RtlReport, format_rtl, run_rtl_check
from .table1 import Table1, Table1Row, format_table1, run_table1, run_table1_cell
from .table2 import Table2Row, format_table2, run_table2
from .table3 import format_table3

__all__ = [
    "AblationReport",
    "Fig7Series",
    "RtlReport",
    "Table1",
    "Table1Row",
    "Table2Row",
    "format_ablation",
    "format_fig7",
    "format_rtl",
    "format_table1",
    "format_table2",
    "format_table3",
    "run_ablation",
    "run_fig7",
    "run_rtl_check",
    "run_table1",
    "run_table1_cell",
    "run_table2",
]
