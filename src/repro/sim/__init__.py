"""Simulated hardware: the operational TSO+HTM machine, the policy-driven
weak-memory machine (Power/ARMv8/RISC-V/SC), and axiomatic oracles."""

from .oracle import (
    ArmRtl,
    BuggyRtlArm,
    HardwareOracle,
    MachineHardware,
    PowerHardware,
    X86Hardware,
    get_oracle,
)
from .policy import CommitPolicy, blocking_matrix, get_policy
from .tso import TsoMachine, reachable_outcomes, runnable_on_tso
from .weakmachine import WeakMachine, runnable_on

__all__ = [
    "ArmRtl",
    "BuggyRtlArm",
    "CommitPolicy",
    "HardwareOracle",
    "MachineHardware",
    "PowerHardware",
    "TsoMachine",
    "WeakMachine",
    "X86Hardware",
    "blocking_matrix",
    "get_oracle",
    "get_policy",
    "reachable_outcomes",
    "runnable_on",
    "runnable_on_tso",
]
