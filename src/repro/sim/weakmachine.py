"""An operational weak-memory machine with HTM, for Power, ARMv8, RISC-V
(and an SC reference), driven by the commit policies of
:mod:`repro.sim.policy`.

This is the repository's stand-in for the paper's POWER8 hardware runs
(section 5.3) and for TM-capable ARM/RISC-V silicon that does not exist:
litmus tests are *executed*, exhaustively over all schedules, and the
set of reachable outcomes is compared against the axiomatic models.

Machine structure
=================

* **Out-of-order commit.**  Each thread may commit its instructions in
  any order consistent with the policy's blocking matrix (dependencies,
  same-location pairs, fences, acquire/release, transaction brackets).

* **Non-multicopy-atomic storage (Power).**  Committed writes append to
  a per-location coherence list; each thread has a per-location *view*
  (an index into that list) advanced by explicit propagation steps, so
  different threads can see writes in different orders.  Reads return
  the co-latest write in view.  Cumulative barriers capture a *group A*
  (writes committed or observed by the thread); a ``sync`` commits only
  once its group A has propagated everywhere, and writes committed
  after a barrier must propagate to each thread after the group A does.

* **Multicopy-atomic storage (ARMv8, RISC-V, SC).**  The same machine
  with instant propagation: every commit publishes to all views at once.

* **HTM.**  Transactional writes are buffered, reads tracked; conflicts
  are detected eagerly (requester wins) against *any* access by another
  thread, giving strong isolation.  Begin/end are full barriers
  (``tfence``); on Power the commit additionally waits for the group A
  to propagate everywhere (the "integrated memory barrier", tprop1) and
  publishes the write set to all threads at once (multicopy-atomic
  transactional stores, tprop2).  An exclusive pair straddling a
  transaction boundary can never succeed (TxnCancelsRMW).

Everything the machine does beyond the axiomatic model errs on the
*strong* side; ``tests/test_weakmachine.py`` checks machine ⊆ model on
the catalog and on synthesized suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..litmus.program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from ..litmus.test import Outcome
from .policy import CommitPolicy, blocking_matrix, get_policy

__all__ = ["WeakMachine", "runnable_on", "reachable_outcomes"]


def runnable_on(program: Program, arch: str) -> bool:
    """True iff every fence in ``program`` exists on ``arch``."""
    policy = get_policy(arch)
    for thread in program.threads:
        for instr in thread:
            if isinstance(instr, Fence) and instr.kind not in policy.supported_fences:
                return False
    return True


@dataclass(frozen=True)
class _Thread:
    """Immutable per-thread state."""

    committed: int  # bitmask over instruction indices
    regs: tuple[tuple[str, int], ...]
    views: tuple[int, ...]  # per-location index into the coherence list
    observed: frozenset[int]  # write ids read so far
    my_writes: frozenset[int]  # write ids committed by this thread
    group_a: frozenset[int]  # cumulativity capture at the last barrier
    txn: int | None  # open transaction number
    read_set: frozenset[int]  # location ids read transactionally
    write_set: tuple[tuple[int, int], ...]  # (loc id, value), in order
    reg_snapshot: tuple[tuple[str, int], ...]
    obs_snapshot: frozenset[int]
    committed_txns: tuple[int, ...]
    aborted_txns: tuple[int, ...]
    monitor: tuple[int, int, int] | None  # (loc id, co length, txn ctx)

    def reg(self, name: str) -> int:
        for key, value in self.regs:
            if key == name:
                return value
        return 0

    def with_reg(self, name: str, value: int) -> "_Thread":
        regs = tuple(
            sorted([(k, v) for k, v in self.regs if k != name] + [(name, value)])
        )
        return self.replace(regs=regs)

    def replace(self, **kwargs) -> "_Thread":
        data = {f: getattr(self, f) for f in self.__dataclass_fields__}
        data.update(kwargs)
        return _Thread(**data)

    def has_committed(self, idx: int) -> bool:
        return bool(self.committed >> idx & 1)

    def txn_ctx(self) -> int:
        """A context id distinguishing transactional episodes (for
        TxnCancelsRMW): -1 outside transactions, else the txn number."""
        return -1 if self.txn is None else self.txn


#: Machine state: (coherence lists per location, pred sets per write id,
#: thread states).
_State = tuple[
    tuple[tuple[tuple[int, int], ...], ...],
    tuple[frozenset[int], ...],
    tuple[_Thread, ...],
]


class WeakMachine:
    """Exhaustive-interleaving executor for the policy-driven machine."""

    def __init__(
        self, program: Program, arch: str, max_states: int = 400_000
    ) -> None:
        if not runnable_on(program, arch):
            raise ValueError(f"program uses fences not available on {arch}")
        self.program = program
        self.arch = arch
        self.policy: CommitPolicy = get_policy(arch)
        self.max_states = max_states
        self.locations = program.locations()
        self.loc_id = {loc: i for i, loc in enumerate(self.locations)}
        self.blockers = blocking_matrix(program, self.policy)
        # Transaction spans per thread: txn number -> (begin idx, end idx).
        self._spans: list[dict[int, tuple[int, int]]] = []
        for thread in program.threads:
            spans: dict[int, tuple[int, int]] = {}
            counter = 0
            begin: int | None = None
            for idx, instr in enumerate(thread):
                if isinstance(instr, TxBegin):
                    begin = idx
                elif isinstance(instr, TxEnd):
                    spans[counter] = (begin, idx)
                    counter += 1
                    begin = None
            self._spans.append(spans)

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------

    def _initial(self) -> _State:
        n_locs = len(self.locations)
        threads = tuple(
            _Thread(
                committed=0,
                regs=(),
                views=(0,) * n_locs,
                observed=frozenset(),
                my_writes=frozenset(),
                group_a=frozenset(),
                txn=None,
                read_set=frozenset(),
                write_set=(),
                reg_snapshot=(),
                obs_snapshot=frozenset(),
                committed_txns=(),
                aborted_txns=(),
                monitor=None,
            )
            for _ in self.program.threads
        )
        return (((),) * n_locs, (), threads)

    @staticmethod
    def _set(
        threads: tuple[_Thread, ...], tid: int, new: _Thread
    ) -> tuple[_Thread, ...]:
        return tuple(new if i == tid else t for i, t in enumerate(threads))

    def _view_value(self, co, thread: _Thread, lid: int) -> tuple[int | None, int]:
        """(write id or None for init, value) of the co-max write in view."""
        idx = thread.views[lid]
        if idx == 0:
            return None, 0
        wid, value = co[lid][idx - 1]
        return wid, value

    def _delivered(self, co, thread: _Thread) -> frozenset[int]:
        """All write ids delivered to this thread."""
        out = set()
        for lid, idx in enumerate(thread.views):
            out.update(wid for wid, _ in co[lid][:idx])
        return frozenset(out)

    def _group_a_everywhere(self, state: _State, tid: int) -> bool:
        """Has ``tid``'s current group A propagated to every thread?"""
        co, _, threads = state
        group = threads[tid].my_writes | threads[tid].observed
        for other in threads:
            delivered = self._delivered(co, other)
            if not group <= delivered:
                return False
        return True

    # ------------------------------------------------------------------
    # Transaction rollback and conflict detection
    # ------------------------------------------------------------------

    def _abort_txn(self, thread: _Thread, tid: int) -> _Thread:
        """Roll back: in-txn commits vanish, registers/observed restored,
        every instruction of the span is marked committed (skipped)."""
        begin, end = self._spans[tid][thread.txn]
        mask = thread.committed
        for idx in range(begin, end + 1):
            mask |= 1 << idx
        return thread.replace(
            committed=mask,
            regs=thread.reg_snapshot,
            observed=thread.obs_snapshot,
            txn=None,
            read_set=frozenset(),
            write_set=(),
            monitor=None,
            aborted_txns=thread.aborted_txns + (thread.txn,),
        )

    def _abort_conflicting(
        self,
        threads: tuple[_Thread, ...],
        actor: int,
        lid: int,
        against_read_sets: bool,
    ) -> tuple[_Thread, ...]:
        """Abort other transactions conflicting on location ``lid``."""
        out = list(threads)
        for tid, thread in enumerate(threads):
            if tid == actor or thread.txn is None:
                continue
            in_ws = any(l == lid for l, _ in thread.write_set)
            in_rs = lid in thread.read_set
            if in_ws or (against_read_sets and in_rs):
                out[tid] = self._abort_txn(thread, tid)
        return tuple(out)

    # ------------------------------------------------------------------
    # Commit steps
    # ------------------------------------------------------------------

    def _commit_write(
        self, state: _State, tid: int, lid: int, value: int, preds: frozenset[int]
    ) -> _State:
        """Append a write to the coherence list; MCA publishes everywhere."""
        co, pred_tab, threads = state
        wid = len(pred_tab)
        co = tuple(
            lst + ((wid, value),) if i == lid else lst for i, lst in enumerate(co)
        )
        pred_tab = pred_tab + (preds,)
        new_len = len(co[lid])
        if self.policy.mca:
            threads = tuple(
                t.replace(
                    views=tuple(
                        new_len if i == lid else v for i, v in enumerate(t.views)
                    )
                )
                for t in threads
            )
        else:
            writer = threads[tid]
            threads = self._set(
                threads,
                tid,
                writer.replace(
                    views=tuple(
                        new_len if i == lid else v
                        for i, v in enumerate(writer.views)
                    )
                ),
            )
        thread = threads[tid]
        threads = self._set(
            threads, tid, thread.replace(my_writes=thread.my_writes | {wid})
        )
        threads = self._abort_conflicting(threads, tid, lid, against_read_sets=True)
        return (co, pred_tab, threads)

    def _ready(self, thread: _Thread, tid: int, idx: int) -> bool:
        blockers = self.blockers[tid][idx]
        return all(thread.has_committed(j) for j in blockers)

    def _step(self, state: _State, tid: int, idx: int) -> _State | None:
        """Commit instruction ``idx`` of thread ``tid``; None if blocked."""
        co, pred_tab, threads = state
        thread = threads[tid]
        instr = self.program.threads[tid][idx]
        mark = thread.committed | (1 << idx)

        if isinstance(instr, CtrlBranch):
            threads = self._set(threads, tid, thread.replace(committed=mark))
            return (co, pred_tab, threads)

        if isinstance(instr, Fence):
            if instr.kind in self.policy.propagation_fences:
                if not self._group_a_everywhere(state, tid):
                    return None
            new = thread.replace(committed=mark)
            if instr.kind in self.policy.cumulative_fences:
                new = new.replace(group_a=new.my_writes | new.observed)
            threads = self._set(threads, tid, new)
            return (co, pred_tab, threads)

        if isinstance(instr, TxBegin):
            if not self.policy.mca and not self._group_a_everywhere(state, tid):
                return None  # tbegin's cumulative barrier
            txn = len(thread.committed_txns) + len(thread.aborted_txns)
            new = thread.replace(
                committed=mark,
                txn=txn,
                reg_snapshot=thread.regs,
                obs_snapshot=thread.observed,
                group_a=thread.my_writes | thread.observed,
            )
            threads = self._set(threads, tid, new)
            return (co, pred_tab, threads)

        if isinstance(instr, TxAbort):
            if instr.reg is None or thread.reg(instr.reg) != 0:
                threads = self._set(threads, tid, self._abort_txn(thread, tid))
            else:
                threads = self._set(threads, tid, thread.replace(committed=mark))
            return (co, pred_tab, threads)

        if isinstance(instr, TxEnd):
            if not self.policy.mca:
                # Commit-time validation: the transaction's footprint
                # must be coherence-current.  A foreign write that is
                # committed but not yet delivered to this thread would
                # otherwise slip past eager conflict detection and let
                # the transaction commit a stale snapshot (a strong-
                # isolation violation).  Wait for delivery — which
                # itself aborts the transaction through the conflict
                # path.
                footprint = set(thread.read_set)
                footprint.update(l for l, _ in thread.write_set)
                for lid in footprint:
                    if thread.views[lid] < len(co[lid]):
                        return None
            if not self.policy.mca and not self._group_a_everywhere(state, tid):
                return None  # the integrated memory barrier (tprop1)
            preds = thread.my_writes | thread.observed
            new_state = (co, pred_tab, threads)
            for lid, value in thread.write_set:
                new_state = self._commit_write(new_state, tid, lid, value, preds)
                co2, pred_tab2, threads2 = new_state
                # Transactional stores are multicopy-atomic (tprop2):
                # publish to every thread, delivering prefixes.
                new_len = len(co2[lid])
                threads2 = tuple(
                    t.replace(
                        views=tuple(
                            new_len if i == lid else v
                            for i, v in enumerate(t.views)
                        )
                    )
                    for t in threads2
                )
                new_state = (co2, pred_tab2, threads2)
            co, pred_tab, threads = new_state
            thread = threads[tid]
            new = thread.replace(
                committed=thread.committed | (1 << idx),
                txn=None,
                read_set=frozenset(),
                write_set=(),
                committed_txns=thread.committed_txns + (thread.txn,),
                group_a=thread.my_writes | thread.observed,
            )
            threads = self._set(threads, tid, new)
            return (co, pred_tab, threads)

        lid = self.loc_id[instr.loc]

        if isinstance(instr, Load):
            if thread.txn is not None:
                value = None
                for l, v in reversed(thread.write_set):
                    if l == lid:
                        value = v
                        break
                observed = thread.observed
                if value is None:
                    wid, value = self._view_value(co, thread, lid)
                    if wid is not None:
                        observed = observed | {wid}
                    threads = self._abort_conflicting(
                        threads, tid, lid, against_read_sets=False
                    )
                    thread = threads[tid]
                new = thread.with_reg(instr.dst, value).replace(
                    committed=thread.committed | (1 << idx),
                    read_set=thread.read_set | {lid},
                    observed=observed,
                )
                if instr.excl:
                    new = new.replace(
                        monitor=(lid, thread.views[lid], thread.txn_ctx())
                    )
                return (co, pred_tab, self._set(threads, tid, new))
            wid, value = self._view_value(co, thread, lid)
            observed = thread.observed | ({wid} if wid is not None else set())
            threads = self._abort_conflicting(
                threads, tid, lid, against_read_sets=False
            )
            thread = threads[tid]
            new = thread.with_reg(instr.dst, value).replace(
                committed=mark, observed=observed
            )
            if instr.excl:
                new = new.replace(
                    monitor=(lid, thread.views[lid], thread.txn_ctx())
                )
            return (co, pred_tab, self._set(threads, tid, new))

        if isinstance(instr, Store):
            if instr.excl:
                monitor = thread.monitor
                if (
                    monitor is None
                    or monitor[0] != lid
                    or monitor[2] != thread.txn_ctx()
                ):
                    return None  # straddles a txn boundary: never succeeds
                if thread.txn is None and monitor[1] != len(co[lid]):
                    return None  # lost the reservation
                # Inside a transaction the co-length check is subsumed by
                # conflict detection (a foreign write aborts the txn).
            if thread.txn is not None:
                new = thread.replace(
                    committed=mark,
                    write_set=thread.write_set + ((lid, instr.value),),
                    monitor=None if instr.excl else thread.monitor,
                )
                threads = self._set(threads, tid, new)
                threads = self._abort_conflicting(
                    threads, tid, lid, against_read_sets=True
                )
                return (co, pred_tab, threads)
            state2 = self._commit_write(
                state, tid, lid, instr.value, threads[tid].group_a
            )
            co, pred_tab, threads = state2
            thread = threads[tid]
            new = thread.replace(
                committed=thread.committed | (1 << idx),
                monitor=None if instr.excl else thread.monitor,
            )
            return (co, pred_tab, self._set(threads, tid, new))

        raise TypeError(f"unknown instruction {instr!r}")

    # ------------------------------------------------------------------
    # Propagation steps (non-MCA only)
    # ------------------------------------------------------------------

    def _propagate(self, state: _State, tid: int, lid: int) -> _State | None:
        """Deliver the next coherence-order write on ``lid`` to ``tid``."""
        co, pred_tab, threads = state
        thread = threads[tid]
        idx = thread.views[lid]
        if idx >= len(co[lid]):
            return None
        wid, _ = co[lid][idx]
        if not pred_tab[wid] <= self._delivered(co, thread):
            return None  # cumulativity: group A first
        new = thread.replace(
            views=tuple(idx + 1 if i == lid else v for i, v in enumerate(thread.views))
        )
        threads = self._set(threads, tid, new)
        threads = self._abort_conflicting(threads, tid, lid, against_read_sets=True)
        # Delivery of a foreign write aborts conflicting transactions on
        # the *receiving* thread too (its read set is stale).
        receiver = threads[tid]
        if receiver.txn is not None and (
            lid in receiver.read_set
            or any(l == lid for l, _ in receiver.write_set)
        ):
            threads = self._set(threads, tid, self._abort_txn(receiver, tid))
        return (co, pred_tab, threads)

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------

    def _successors(self, state: _State) -> Iterator[_State]:
        co, _, threads = state
        for tid, thread in enumerate(threads):
            n_instr = len(self.program.threads[tid])
            for idx in range(n_instr):
                if thread.has_committed(idx):
                    continue
                if not self._ready(thread, tid, idx):
                    continue
                nxt = self._step(state, tid, idx)
                if nxt is not None:
                    yield nxt
            if not self.policy.mca:
                for lid in range(len(self.locations)):
                    nxt = self._propagate(state, tid, lid)
                    if nxt is not None:
                        yield nxt

    def _finished(self, state: _State) -> bool:
        _, _, threads = state
        return all(
            thread.committed == (1 << len(self.program.threads[tid])) - 1
            for tid, thread in enumerate(threads)
        )

    def explore(self) -> set[Outcome]:
        """All final outcomes reachable under some schedule."""
        outcomes: dict[tuple, Outcome] = {}
        seen: set[_State] = set()
        stack = [self._initial()]
        while stack:
            state = stack.pop()
            if state in seen:
                continue
            seen.add(state)
            if len(seen) > self.max_states:
                raise RuntimeError(
                    f"state space exceeds {self.max_states} states"
                )
            if self._finished(state):
                outcome = self._outcome(state)
                outcomes[outcome.key()] = outcome
            stack.extend(self._successors(state))
        return set(outcomes.values())

    def _outcome(self, state: _State) -> Outcome:
        co, _, threads = state
        registers: dict[tuple[int, str], int] = {}
        committed = set()
        aborted = set()
        for tid, thread in enumerate(threads):
            for reg, value in thread.regs:
                registers[(tid, reg)] = value
            committed.update((tid, txn) for txn in thread.committed_txns)
            aborted.update((tid, txn) for txn in thread.aborted_txns)
        memory = {}
        write_orders = {}
        for lid, loc in enumerate(self.locations):
            if co[lid]:
                memory[loc] = co[lid][-1][1]
                write_orders[loc] = tuple(value for _, value in co[lid])
        return Outcome(
            registers=registers,
            memory=memory,
            committed=frozenset(committed),
            aborted=frozenset(aborted),
            write_orders=write_orders,
        )


def reachable_outcomes(
    program: Program, arch: str, max_states: int = 400_000
) -> set[Outcome]:
    """All outcomes of ``program`` on the ``arch`` machine."""
    return WeakMachine(program, arch, max_states=max_states).explore()
