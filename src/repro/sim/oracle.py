"""Hardware oracles: the machines our conformance tests "run on".

The paper ran its suites on Intel TSX silicon, an 80-core POWER8, and an
ARM RTL prototype.  None of those are available offline, so each is
simulated by the closest faithful stand-in (see DESIGN.md §1):

* :class:`X86Hardware` — the operational TSO+HTM machine of
  :mod:`repro.sim.tso` (exact reachability, not sampling);
* :class:`PowerHardware` — the axiomatic Power TM model strengthened with
  ``acyclic(po ∪ rf)``: real POWER8 parts have never exhibited load
  buffering ("the LB shape ... has never actually been observed on a
  Power machine", section 5.3), so the no-LB oracle reproduces exactly
  the paper's observation pattern: Forbid never seen, Allow mostly seen,
  the unseen Allow tests dominated by LB shapes;
* :class:`BuggyRtlArm` — the ARMv8 TM model *without* the TxnOrder axiom,
  reproducing the RTL prototype bug the paper's suite uncovered
  (section 6.2).

All oracles answer :meth:`HardwareOracle.observable` for a litmus test,
which is the role the Litmus tool plays in the paper's flow.
"""

from __future__ import annotations

from ..litmus.candidates import forall_holds, observable
from ..litmus.test import LitmusTest
from ..models.armv8 import ARMv8
from ..models.base import MemoryModel
from ..models.power import Power
from ..models.registry import get_model
from .tso import TsoMachine, runnable_on_tso
from .weakmachine import WeakMachine, runnable_on

__all__ = [
    "HardwareOracle",
    "X86Hardware",
    "PowerHardware",
    "MachineHardware",
    "ArmRtl",
    "BuggyRtlArm",
    "get_oracle",
    "oracle_for_spec",
]


class HardwareOracle:
    """Base interface: can a litmus test's postcondition be observed?

    :meth:`forall` answers herd7's ``forall`` condition — does *every*
    reachable final state satisfy the postcondition?
    """

    name = "oracle"

    def observable(self, test: LitmusTest) -> bool:
        raise NotImplementedError

    def forall(self, test: LitmusTest) -> bool:
        raise NotImplementedError


class _AxiomaticOracle(HardwareOracle):
    """Observable iff some consistent candidate satisfies the test.

    Delegates to :func:`repro.litmus.candidates.observable`, sharing the
    postcondition-filtered candidate streams (and per-candidate
    analyses) with the axiomatic checkers.
    """

    def __init__(self, model: MemoryModel) -> None:
        self.model = model

    def observable(self, test: LitmusTest) -> bool:
        return observable(test, self.model)

    def forall(self, test: LitmusTest) -> bool:
        return forall_holds(test, self.model)


class X86Hardware(HardwareOracle):
    """Intel-TSX stand-in: exhaustive execution on the TSO+HTM machine."""

    name = "x86-tso-htm-sim"

    def observable(self, test: LitmusTest) -> bool:
        if not runnable_on_tso(test.program):
            raise ValueError("test is not an x86 program")
        for outcome in TsoMachine(test.program).explore():
            if test.check(outcome):
                return True
        return False

    def forall(self, test: LitmusTest) -> bool:
        if not runnable_on_tso(test.program):
            raise ValueError("test is not an x86 program")
        return all(
            test.check(outcome)
            for outcome in TsoMachine(test.program).explore()
        )


class _NoLbPower(Power):
    """Power TM strengthened with no-load-buffering (conservative silicon)."""

    arch = "power-hw"

    @classmethod
    def define(cls):
        from ..ir import prelude as P
        from ..ir.model import IRAxiom, IRDefinition

        base = Power.define()
        # ``po ∪ rf`` is the same interned node as cpp's NoThinAir
        # operand — sharing across families comes for free.
        no_lb = IRAxiom("NoLB", "acyclic", "no_lb", P.po | P.rf)
        return IRDefinition(base.axioms + (no_lb,), base.extras)


class PowerHardware(_AxiomaticOracle):
    """POWER8 stand-in: the TM model plus the never-observed-LB fact."""

    name = "power8-sim"

    def __init__(self) -> None:
        super().__init__(_NoLbPower())


class MachineHardware(HardwareOracle):
    """Operational stand-in: exhaustive execution on the policy-driven
    weak machine of :mod:`repro.sim.weakmachine` (Power's non-MCA
    propagation machine, or the MCA machine for ARMv8/RISC-V)."""

    def __init__(self, arch: str, max_states: int = 400_000) -> None:
        self.arch = arch
        self.name = f"{arch}-machine-sim"
        self.max_states = max_states

    def observable(self, test: LitmusTest) -> bool:
        if not runnable_on(test.program, self.arch):
            raise ValueError(f"test is not a {self.arch} program")
        machine = WeakMachine(test.program, self.arch, self.max_states)
        return any(test.check(outcome) for outcome in machine.explore())

    def forall(self, test: LitmusTest) -> bool:
        if not runnable_on(test.program, self.arch):
            raise ValueError(f"test is not a {self.arch} program")
        machine = WeakMachine(test.program, self.arch, self.max_states)
        return all(test.check(outcome) for outcome in machine.explore())


class _NoTxnOrderArm(ARMv8):
    """The buggy RTL prototype: TxnOrder accidentally unenforced —
    the same uniform IR axiom-drop the fuzzer's mutants use."""

    arch = "armv8-rtl"

    @classmethod
    def define(cls):
        return ARMv8.define().drop("TxnOrder")


class BuggyRtlArm(_AxiomaticOracle):
    """ARM RTL prototype with the section 6.2 TxnOrder bug."""

    name = "armv8-rtl-buggy"

    def __init__(self) -> None:
        super().__init__(_NoTxnOrderArm())


class ArmRtl(_AxiomaticOracle):
    """A corrected ARM RTL: exactly the proposed model."""

    name = "armv8-rtl-fixed"

    def __init__(self) -> None:
        super().__init__(get_model("armv8"))


def get_oracle(
    arch: str, buggy_rtl: bool = False, operational: bool = False
) -> HardwareOracle:
    """The default hardware stand-in for an architecture.

    ``operational=True`` selects the policy-driven operational machine
    where one exists (power/armv8/riscv) instead of the axiomatic
    oracle.
    """
    if arch == "x86":
        return X86Hardware()
    if operational and arch in ("power", "armv8", "riscv"):
        return MachineHardware(arch)
    if arch == "power":
        return PowerHardware()
    if arch == "armv8":
        return BuggyRtlArm() if buggy_rtl else ArmRtl()
    if arch == "riscv":
        return MachineHardware(arch)
    raise ValueError(f"no hardware oracle for {arch!r}")


def oracle_for_spec(text: str) -> HardwareOracle:
    """Resolve an oracle spec: ``<arch>`` or ``<arch>:<variant>``.

    Variants select between the stand-ins for one architecture:

    * ``machine`` — the policy-driven operational machine
      (:class:`MachineHardware`, power/armv8/riscv);
    * ``buggy`` — the §6.2 RTL prototype with the TxnOrder bug
      (armv8 only);
    * no variant — the default :func:`get_oracle` stand-in.

    This is the parsing behind the campaign engine's ``hw:<arch>`` and
    ``hw:<arch>:<variant>`` checker specs.
    """
    arch, _, variant = text.partition(":")
    if not variant:
        return get_oracle(arch)
    if variant == "machine":
        return get_oracle(arch, operational=True)
    if variant == "buggy":
        if arch != "armv8":
            raise ValueError(f"no buggy RTL stand-in for {arch!r}")
        return get_oracle(arch, buggy_rtl=True)
    raise ValueError(
        f"unknown oracle variant {variant!r} in {text!r}; "
        f"use 'machine' or 'buggy'"
    )
