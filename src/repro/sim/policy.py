"""Per-architecture commit-ordering policies for the weak-memory machine.

The operational machine of :mod:`repro.sim.weakmachine` commits the
instructions of each thread *out of program order*.  A policy decides
which program-order pairs must nonetheless commit in order; everything
else may be reordered by the scheduler.  This is the operational face of
each model's preserved-program-order, approximated **conservatively**:
the machine may enforce *more* order than the axiomatic model requires
(hurting only the Allow-observation rate), but never less — the
conformance tests check that every machine behaviour is admitted by the
corresponding axiomatic model.

Ordering comes from three places:

1. *direct rules* between two instructions (dependencies, same-location
   accesses, acquire/release labels, transaction brackets, control
   dependencies into stores);
2. *fence rules*: an access pair with a fence strictly between them in
   program order is committed in order when :meth:`CommitPolicy.
   fence_orders` says the flavour orders that pair (this is where the
   lwsync store→load relaxation lives);
3. *fence instruction scheduling*: the fence instruction itself waits
   for / blocks neighbours just enough for its bookkeeping (cumulativity
   markers, sync's propagation wait) to be well placed.

Conservative simplifications (documented in DESIGN.md):

* Power ``isync`` alone blocks later commits until earlier loads commit
  (a superset of ``ctrl+isync``);
* same-location accesses always commit in program order (subsumes
  coherence; forwarding is outcome-equivalent at commit granularity);
* control dependencies order *stores* after the branch everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.events import Label
from ..litmus.program import (
    CtrlBranch,
    Fence,
    Instruction,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)

__all__ = ["CommitPolicy", "POLICIES", "get_policy", "blocking_matrix"]


def _is_load(instr: Instruction) -> bool:
    return isinstance(instr, Load)


def _is_store(instr: Instruction) -> bool:
    return isinstance(instr, Store)


def _is_access(instr: Instruction) -> bool:
    return isinstance(instr, (Load, Store))


def _same_loc(a: Instruction, b: Instruction) -> bool:
    a_loc = getattr(a, "loc", None)
    b_loc = getattr(b, "loc", None)
    return a_loc is not None and a_loc == b_loc


def _regs_read(instr: Instruction) -> tuple[str, ...]:
    if isinstance(instr, Load):
        return instr.addr_dep
    if isinstance(instr, Store):
        return instr.data_dep + instr.addr_dep
    if isinstance(instr, CtrlBranch):
        return instr.regs
    if isinstance(instr, TxAbort) and instr.reg is not None:
        return (instr.reg,)
    return ()


@dataclass(frozen=True)
class CommitPolicy:
    """Commit-order rules for one architecture.

    Attributes:
        arch: architecture tag.
        mca: multicopy-atomic — committed writes become visible to every
            thread at once (ARMv8, RISC-V, SC); otherwise writes
            propagate per thread under scheduler control (Power).
        in_order: commit strictly in program order (the SC machine).
        acq_rel_labels: honour ACQ/REL one-way barriers on accesses.
        full_fences: flavours ordering every access pair across them.
        ld_fences: flavours ordering earlier loads before everything.
        st_fences: flavours ordering earlier stores before later stores.
        lw_fences: Power lwsync: orders all pairs except store→load,
            and is cumulative on the propagation side.
        isync_fences: conservative ctrl+isync: earlier loads before
            everything later.
        tso_fences: RISC-V fence.tso: earlier loads before everything,
            earlier stores before later stores.
    """

    arch: str
    mca: bool
    in_order: bool = False
    acq_rel_labels: bool = True
    full_fences: frozenset[str] = frozenset()
    ld_fences: frozenset[str] = frozenset()
    st_fences: frozenset[str] = frozenset()
    lw_fences: frozenset[str] = frozenset()
    isync_fences: frozenset[str] = frozenset()
    tso_fences: frozenset[str] = frozenset()

    @property
    def supported_fences(self) -> frozenset[str]:
        return (
            self.full_fences
            | self.ld_fences
            | self.st_fences
            | self.lw_fences
            | self.isync_fences
            | self.tso_fences
        )

    #: Flavours whose commit must wait until the thread's group-A writes
    #: have propagated to every thread (Power's strong barrier).
    @property
    def propagation_fences(self) -> frozenset[str]:
        return self.full_fences if not self.mca else frozenset()

    #: Flavours that mark cumulativity (group-A capture) on commit.
    @property
    def cumulative_fences(self) -> frozenset[str]:
        if self.mca:
            return frozenset()
        return self.full_fences | self.lw_fences

    # ------------------------------------------------------------------
    # Rule 1: direct pairwise order
    # ------------------------------------------------------------------

    def direct_orders(
        self, thread: tuple[Instruction, ...], j: int, i: int
    ) -> bool:
        """Must ``j`` commit before ``i`` regardless of what is between?"""
        a, b = thread[j], thread[i]

        # Transaction brackets are full barriers (tfence); the body also
        # commits in order relative to both brackets.  An abort point is
        # likewise ordered against everything in its thread so rollback
        # is well defined.
        if isinstance(a, (TxBegin, TxEnd, TxAbort)) or isinstance(
            b, (TxBegin, TxEnd, TxAbort)
        ):
            return True

        # Coherence: same-location accesses commit in program order.
        if _same_loc(a, b):
            return True

        # Dataflow: a load commits before any user of its register.
        if isinstance(a, Load) and a.dst in _regs_read(b):
            return True

        # Control dependencies: the branch waits for its registers
        # (dataflow above); stores after the branch wait for the branch.
        if isinstance(a, CtrlBranch) and _is_store(b):
            return True

        # One-way barriers from access labels.
        if self.acq_rel_labels:
            if isinstance(a, Load) and Label.ACQ in a.labels:
                return True
            if isinstance(b, Store) and Label.REL in b.labels:
                return True
            # RCsc pairs: a release store also commits before a
            # po-later acquire load (RVWMO ppo rule 7; ARMv8 bob's
            # ``[REL & W]; po; [ACQ & R]``).  The one-way rules above
            # cover every other annotated pair, but not this one — and
            # without it the machine reaches store-buffering outcomes
            # on rel/acq-annotated SB that both axiomatic models
            # forbid (a ⊆-escape the seeded conformance suite found).
            if (
                isinstance(a, Store)
                and Label.REL in a.labels
                and isinstance(b, Load)
                and Label.ACQ in b.labels
            ):
                return True

        return False

    # ------------------------------------------------------------------
    # Rule 2: order imposed by a fence strictly between two accesses
    # ------------------------------------------------------------------

    def fence_orders(
        self, kind: str, a: Instruction, b: Instruction
    ) -> bool:
        """Does a ``kind`` fence between ``a`` and ``b`` order them?"""
        if kind in self.full_fences:
            return True
        if kind in self.ld_fences or kind in self.isync_fences:
            return _is_load(a)
        if kind in self.st_fences:
            return _is_store(a) and _is_store(b)
        if kind in self.lw_fences:
            # Everything except store→load.
            return not (_is_store(a) and _is_load(b))
        if kind in self.tso_fences:
            return _is_load(a) or (_is_store(a) and _is_store(b))
        return False

    # ------------------------------------------------------------------
    # Rule 3: scheduling of the fence instruction itself
    # ------------------------------------------------------------------

    def fence_waits_for(self, kind: str, a: Instruction) -> bool:
        """Must the earlier instruction ``a`` commit before the fence?"""
        if kind in self.full_fences:
            return True
        if kind in self.lw_fences:
            return _is_access(a)  # marker sits after everything it covers
        if kind in self.ld_fences or kind in self.isync_fences:
            return _is_load(a)
        if kind in self.st_fences:
            return _is_store(a)
        if kind in self.tso_fences:
            return _is_access(a)
        return False

    def fence_blocks(self, kind: str, b: Instruction) -> bool:
        """Must the fence commit before the later instruction ``b``?"""
        if kind in self.full_fences:
            return True
        if kind in self.lw_fences:
            return _is_store(b)  # marker precedes the writes it fences
        if kind in self.ld_fences or kind in self.isync_fences:
            return True
        if kind in self.st_fences:
            return _is_store(b)
        if kind in self.tso_fences:
            # Pairwise rules already order R→* and W→W across the fence;
            # blocking later loads here would wrongly forbid W→R.
            return _is_store(b)
        return False


POLICIES: dict[str, CommitPolicy] = {
    "power": CommitPolicy(
        arch="power",
        mca=False,
        acq_rel_labels=False,
        full_fences=frozenset({Label.SYNC}),
        lw_fences=frozenset({Label.LWSYNC}),
        isync_fences=frozenset({Label.ISYNC}),
    ),
    "armv8": CommitPolicy(
        arch="armv8",
        mca=True,
        full_fences=frozenset({Label.DMB}),
        ld_fences=frozenset({Label.DMB_LD}),
        st_fences=frozenset({Label.DMB_ST}),
    ),
    "riscv": CommitPolicy(
        arch="riscv",
        mca=True,
        full_fences=frozenset({Label.FENCE_RW_RW}),
        ld_fences=frozenset({Label.FENCE_R_RW}),
        st_fences=frozenset({Label.FENCE_RW_W}),
        tso_fences=frozenset({Label.FENCE_TSO}),
    ),
    "sc": CommitPolicy(arch="sc", mca=True, in_order=True),
}


def get_policy(arch: str) -> CommitPolicy:
    """Look up the commit policy for ``arch``."""
    try:
        return POLICIES[arch]
    except KeyError:
        raise ValueError(
            f"no commit policy for {arch!r}; known: "
            f"{', '.join(sorted(POLICIES))}"
        ) from None


def blocking_matrix(
    program: Program, policy: CommitPolicy
) -> tuple[tuple[frozenset[int], ...], ...]:
    """Per thread, per instruction: earlier indices that must commit
    first (direct rules, between-fence rules, fence scheduling)."""
    out: list[tuple[frozenset[int], ...]] = []
    for thread in program.threads:
        rows: list[frozenset[int]] = []
        for i, b in enumerate(thread):
            if policy.in_order:
                rows.append(frozenset(range(i)))
                continue
            blockers: set[int] = set()
            for j in range(i):
                a = thread[j]
                if isinstance(a, Fence):
                    if isinstance(b, Fence):
                        # Fences commit in order among themselves.
                        blockers.add(j)
                    elif policy.fence_blocks(a.kind, b):
                        blockers.add(j)
                    continue
                if isinstance(b, Fence):
                    if policy.fence_waits_for(b.kind, a):
                        blockers.add(j)
                    continue
                if policy.direct_orders(thread, j, i):
                    blockers.add(j)
                    continue
                # A fence strictly between j and i.
                for k in range(j + 1, i):
                    mid = thread[k]
                    if isinstance(mid, Fence) and policy.fence_orders(
                        mid.kind, a, b
                    ):
                        blockers.add(j)
                        break
            rows.append(frozenset(blockers))
        out.append(tuple(rows))
    return tuple(out)
