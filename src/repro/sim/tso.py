"""An operational x86-TSO machine with hardware transactional memory.

This is the repository's stand-in for the paper's four Intel TSX machines
(section 5.3): litmus tests are *executed*, exhaustively over all
interleavings, rather than checked axiomatically.  The machine implements

* **x86-TSO** (Owens et al. [44]): a FIFO store buffer per hardware
  thread with store-to-load forwarding; ``MFENCE`` and LOCK'd RMWs drain
  the buffer;
* **TSX-style HTM** (Intel SDM ch. 16): transactional writes are buffered
  in a speculative write set, reads are tracked in a read set, conflicts
  are detected eagerly at memory-visible accesses (requester wins), and
  the paper's strong isolation holds: non-transactional accesses abort
  conflicting transactions too.  Successful begins/commits drain the
  store buffer, matching the model's ``tfence``.

The explorer enumerates every schedule (instruction execution and buffer
drain are separate scheduler actions) with state memoisation, so the set
of reachable outcomes is exact for the small programs litmus tests use.

A Forbid test synthesized from the axiomatic x86 model must never be
reachable here (soundness); most Allow tests should be (completeness) —
the exceptions are tests relying on orders the eager requester-wins
policy serialises, mirroring the paper's 83% observation rate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..litmus.program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from ..litmus.test import LitmusTest, Outcome

__all__ = ["TsoMachine", "reachable_outcomes", "runnable_on_tso"]


@dataclass(frozen=True)
class _ThreadState:
    """Immutable per-thread machine state."""

    pc: int
    regs: tuple[tuple[str, int], ...]
    buffer: tuple[tuple[str, int], ...]  # FIFO store buffer, oldest first
    txn: int | None  # index of the open transaction, if any
    read_set: frozenset[str]
    write_set: tuple[tuple[str, int], ...]  # insertion order preserved
    reg_snapshot: tuple[tuple[str, int], ...]  # registers at txn begin
    committed: tuple[int, ...]
    aborted: tuple[int, ...]

    def reg(self, name: str) -> int:
        for key, value in self.regs:
            if key == name:
                return value
        return 0

    def with_reg(self, name: str, value: int) -> "_ThreadState":
        regs = tuple((k, v) for k, v in self.regs if k != name) + ((name, value),)
        return self._replace(regs=tuple(sorted(regs)))

    def _replace(self, **kwargs) -> "_ThreadState":
        fields = {
            "pc": self.pc,
            "regs": self.regs,
            "buffer": self.buffer,
            "txn": self.txn,
            "read_set": self.read_set,
            "write_set": self.write_set,
            "reg_snapshot": self.reg_snapshot,
            "committed": self.committed,
            "aborted": self.aborted,
        }
        fields.update(kwargs)
        return _ThreadState(**fields)

    def write_set_value(self, loc: str) -> int | None:
        for key, value in reversed(self.write_set):
            if key == loc:
                return value
        return None

    def buffered_value(self, loc: str) -> int | None:
        for key, value in reversed(self.buffer):
            if key == loc:
                return value
        return None


# (memory, write log in commit order, per-thread states)
_State = tuple[
    tuple[tuple[str, int], ...],
    tuple[tuple[str, int], ...],
    tuple[_ThreadState, ...],
]


def runnable_on_tso(program: Program) -> bool:
    """The machine executes loads, stores, MFENCEs, branches, and
    transactions; other fence flavours have no x86 encoding."""
    for thread in program.threads:
        for instr in thread:
            if isinstance(instr, Fence) and instr.kind != "mfence":
                return False
    return True


class TsoMachine:
    """Exhaustive-interleaving executor for x86-TSO + HTM."""

    def __init__(self, program: Program, max_states: int = 200_000) -> None:
        if not runnable_on_tso(program):
            raise ValueError("program uses non-x86 fences")
        self.program = program
        self.max_states = max_states
        # Pre-compute transaction spans: (begin index, end index, txn no).
        self._spans: list[dict[int, tuple[int, int]]] = []
        for thread in program.threads:
            spans: dict[int, tuple[int, int]] = {}
            counter = 0
            begin: int | None = None
            for idx, instr in enumerate(thread):
                if isinstance(instr, TxBegin):
                    begin = idx
                elif isinstance(instr, TxEnd):
                    spans[counter] = (begin, idx)
                    counter += 1
                    begin = None
            self._spans.append(spans)
        # Pre-compute LOCK'd RMW pairs per thread: an exclusive store
        # pairs with the closest preceding exclusive load on the *same*
        # location (mirroring the candidate expansion).  Unpaired
        # exclusive loads execute as plain loads — found by the
        # differential fuzzer: the old "every exclusive load is the read
        # half of an RMW" treatment silently dropped their register
        # write, observing r0=0 past a program-order-earlier store.
        self._excl_pairs: list[dict[int, int]] = []  # load pc -> store pc
        self._excl_store_load: list[dict[int, int]] = []  # store pc -> load pc
        for thread in program.threads:
            pairs: dict[int, int] = {}
            open_excl: dict[str, int] = {}
            for idx, instr in enumerate(thread):
                if isinstance(instr, Load) and instr.excl:
                    open_excl[instr.loc] = idx
                elif (
                    isinstance(instr, Store)
                    and instr.excl
                    and instr.loc in open_excl
                ):
                    pairs[open_excl.pop(instr.loc)] = idx
            self._excl_pairs.append(pairs)
            self._excl_store_load.append({s: l for l, s in pairs.items()})
        # Static pc → transaction-number map, for commit-aware pairing:
        # an exclusive load inside an *aborted* transaction is rolled
        # back with it, so a post-transaction exclusive store must not
        # pair with it (the candidate expansion drops the vanished load).
        self._txn_of_pc: list[dict[int, int]] = []
        for tid, spans in enumerate(self._spans):
            by_pc: dict[int, int] = {}
            for txn_no, (begin, end) in spans.items():
                for pc in range(begin, end + 1):
                    by_pc[pc] = txn_no
            self._txn_of_pc.append(by_pc)
        # Deferring the paired read to the store ("the read half of a
        # LOCK'd RMW executes with the store") is only sound for a
        # *clean* same-context pair: nothing between the halves may
        # touch the pair's location (the deferred read would observe
        # po-later same-thread writes — coRW1 — or contradict
        # po-ordered reads — coRR), and nothing may consume or redefine
        # the load's destination register (a TxAbort condition would
        # decide commit on a value the store later rewrites
        # retroactively).  Every one of these was a machine-escape
        # found by the fuzzer's randomized subset stress or its review.
        # Any other surviving pair blocks at the store (mirroring the
        # weak machine's failed store-exclusive), so no outcome from
        # that path exists at all.
        self._rmw_store_pcs: list[frozenset[int]] = []
        self._noop_load_pcs: list[frozenset[int]] = []
        for tid, thread in enumerate(program.threads):
            rmw_stores = set()
            noop_loads = set()
            for store_pc, load_pc in self._excl_store_load[tid].items():
                if self._txn_of_pc[tid].get(load_pc) != self._txn_of_pc[
                    tid
                ].get(store_pc):
                    continue  # straddling pair: never atomic
                loc = thread[store_pc].loc
                dst = thread[load_pc].dst
                between = thread[load_pc + 1 : store_pc]
                if any(
                    isinstance(ins, (Load, Store)) and ins.loc == loc
                    for ins in between
                ):
                    continue  # reservation lost
                if any(
                    (isinstance(ins, Load) and ins.dst == dst)
                    or (isinstance(ins, TxAbort) and ins.reg == dst)
                    for ins in between
                ):
                    continue  # deferred register write would be seen
                rmw_stores.add(store_pc)
                noop_loads.add(load_pc)
            self._rmw_store_pcs.append(frozenset(rmw_stores))
            self._noop_load_pcs.append(frozenset(noop_loads))

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def _initial(self) -> _State:
        threads = tuple(
            _ThreadState(
                pc=0,
                regs=(),
                buffer=(),
                txn=None,
                read_set=frozenset(),
                write_set=(),
                reg_snapshot=(),
                committed=(),
                aborted=(),
            )
            for _ in self.program.threads
        )
        return ((), (), threads)

    @staticmethod
    def _mem_get(memory: tuple[tuple[str, int], ...], loc: str) -> int:
        for key, value in memory:
            if key == loc:
                return value
        return 0

    @staticmethod
    def _mem_set(
        memory: tuple[tuple[str, int], ...], loc: str, value: int
    ) -> tuple[tuple[str, int], ...]:
        return tuple(sorted({**dict(memory), loc: value}.items()))

    def _abort_txn(self, thread: _ThreadState, tid: int) -> _ThreadState:
        """Roll a transaction back: registers restored, pc to past TxEnd."""
        txn = thread.txn
        _, end = self._spans[tid][txn]
        return thread._replace(
            pc=end + 1,
            regs=thread.reg_snapshot,
            txn=None,
            read_set=frozenset(),
            write_set=(),
            aborted=thread.aborted + (txn,),
        )

    def _abort_conflicting(
        self,
        threads: tuple[_ThreadState, ...],
        actor: int,
        loc: str,
        against_read_sets: bool,
    ) -> tuple[_ThreadState, ...]:
        """Abort every *other* transaction that conflicts on ``loc``.

        A write conflicts with other transactions' read and write sets; a
        read conflicts with other transactions' write sets only.
        """
        out = list(threads)
        for tid, thread in enumerate(threads):
            if tid == actor or thread.txn is None:
                continue
            in_write_set = any(k == loc for k, _ in thread.write_set)
            in_read_set = loc in thread.read_set
            if in_write_set or (against_read_sets and in_read_set):
                out[tid] = self._abort_txn(thread, tid)
        return tuple(out)

    def _drain_one(self, state: _State, tid: int) -> _State:
        memory, log, threads = state
        thread = threads[tid]
        (loc, value), rest = thread.buffer[0], thread.buffer[1:]
        memory = self._mem_set(memory, loc, value)
        log = log + ((loc, value),)
        threads = self._abort_conflicting(
            threads, tid, loc, against_read_sets=True
        )
        threads = tuple(
            t._replace(buffer=rest) if i == tid else t
            for i, t in enumerate(threads)
        )
        return (memory, log, threads)

    def _step_instruction(self, state: _State, tid: int) -> _State | None:
        """Execute the next instruction of ``tid``; ``None`` if blocked."""
        memory, log, threads = state
        thread = threads[tid]
        instr = self.program.threads[tid][thread.pc]

        if isinstance(instr, CtrlBranch):
            # Dependencies are order-irrelevant on TSO; fall through.
            threads = self._set(threads, tid, thread._replace(pc=thread.pc + 1))
            return (memory, log, threads)

        if isinstance(instr, Fence):
            if thread.buffer:
                return None  # blocked until the buffer drains
            threads = self._set(threads, tid, thread._replace(pc=thread.pc + 1))
            return (memory, log, threads)

        if isinstance(instr, TxBegin):
            if thread.buffer:
                return None  # implicit fence at successful txn begin
            txn = len(thread.committed) + len(thread.aborted)
            threads = self._set(
                threads,
                tid,
                thread._replace(
                    pc=thread.pc + 1, txn=txn, reg_snapshot=thread.regs
                ),
            )
            return (memory, log, threads)

        if isinstance(instr, TxAbort):
            if instr.reg is None or thread.reg(instr.reg) != 0:
                threads = self._set(threads, tid, self._abort_txn(thread, tid))
            else:
                threads = self._set(
                    threads, tid, thread._replace(pc=thread.pc + 1)
                )
            return (memory, log, threads)

        if isinstance(instr, TxEnd):
            # Commit: apply the write set to memory atomically.
            for loc, value in thread.write_set:
                memory = self._mem_set(memory, loc, value)
                log = log + ((loc, value),)
                threads = self._abort_conflicting(
                    threads, tid, loc, against_read_sets=True
                )
            thread = threads[tid]
            threads = self._set(
                threads,
                tid,
                thread._replace(
                    pc=thread.pc + 1,
                    txn=None,
                    read_set=frozenset(),
                    write_set=(),
                    committed=thread.committed + (thread.txn,),
                ),
            )
            return (memory, log, threads)

        if isinstance(instr, Load):
            if instr.excl and thread.pc in self._noop_load_pcs[tid]:
                # The read half of a LOCK'd RMW executes with the store;
                # *unpaired* and transaction-straddling exclusive loads
                # fall through and execute as ordinary loads.
                threads = self._set(
                    threads, tid, thread._replace(pc=thread.pc + 1)
                )
                return (memory, log, threads)
            if thread.txn is not None:
                value = thread.write_set_value(instr.loc)
                if value is None:
                    value = self._mem_get(memory, instr.loc)
                    threads = self._abort_conflicting(
                        threads, tid, instr.loc, against_read_sets=False
                    )
                thread = threads[tid]
                thread = thread.with_reg(instr.dst, value)._replace(
                    pc=thread.pc + 1,
                    read_set=thread.read_set | {instr.loc},
                )
                return (memory, log, self._set(threads, tid, thread))
            value = thread.buffered_value(instr.loc)
            if value is None:
                value = self._mem_get(memory, instr.loc)
                threads = self._abort_conflicting(
                    threads, tid, instr.loc, against_read_sets=False
                )
                thread = threads[tid]
            thread = thread.with_reg(instr.dst, value)._replace(pc=thread.pc + 1)
            return (memory, log, self._set(threads, tid, thread))

        if isinstance(instr, Store):
            if instr.excl and thread.txn is not None:
                # A LOCK'd operation inside a TSX transaction aborts it
                # (Intel SDM 16.3.8 lists LOCK-prefixed instructions
                # among the abort causes).  The old direct-to-memory
                # path leaked the write past the rollback — found by
                # the differential fuzzer's machine-escape classifier.
                threads = self._set(threads, tid, self._abort_txn(thread, tid))
                return (memory, log, threads)
            if instr.excl:
                # LOCK'd RMW: buffer must be empty; atomic read+write.
                if thread.buffer:
                    return None
                load = self._paired_exclusive_load(tid, thread.pc, thread)
                if (
                    load is not None
                    and thread.pc not in self._rmw_store_pcs[tid]
                ):
                    # The pair survived this run's commit choices but
                    # cannot execute atomically (straddling context or
                    # lost reservation): the path never completes.
                    return None
                old = self._mem_get(memory, instr.loc)
                memory = self._mem_set(memory, instr.loc, instr.value)
                log = log + ((instr.loc, instr.value),)
                threads = self._abort_conflicting(
                    threads, tid, instr.loc, against_read_sets=True
                )
                thread = threads[tid]
                if load is not None:
                    thread = thread.with_reg(load.dst, old)
                thread = thread._replace(pc=thread.pc + 1)
                return (memory, log, self._set(threads, tid, thread))
            if thread.txn is not None:
                thread = thread._replace(
                    pc=thread.pc + 1,
                    write_set=thread.write_set + ((instr.loc, instr.value),),
                )
                threads = self._set(threads, tid, thread)
                threads = self._abort_conflicting(
                    threads, tid, instr.loc, against_read_sets=True
                )
                return (memory, log, threads)
            thread = thread._replace(
                pc=thread.pc + 1,
                buffer=thread.buffer + ((instr.loc, instr.value),),
            )
            return (memory, log, self._set(threads, tid, thread))

        raise TypeError(f"unknown instruction {instr!r}")

    def _paired_exclusive_load(
        self, tid: int, store_pc: int, thread: _ThreadState
    ) -> Load | None:
        """The exclusive load paired with the store at ``store_pc``
        (same location, closest preceding — matching the expansion).

        Pairing is commit-aware: a load inside a transaction this run
        *aborted* was rolled back and never executed, so the store runs
        unpaired (exactly as the candidate expansion drops the vanished
        load for that commit choice)."""
        load_pc = self._excl_store_load[tid].get(store_pc)
        if load_pc is None:
            return None
        txn_no = self._txn_of_pc[tid].get(load_pc)
        if (
            txn_no is not None
            and txn_no != thread.txn
            and txn_no not in thread.committed
        ):
            return None
        return self.program.threads[tid][load_pc]

    @staticmethod
    def _set(
        threads: tuple[_ThreadState, ...], tid: int, new: _ThreadState
    ) -> tuple[_ThreadState, ...]:
        return tuple(new if i == tid else t for i, t in enumerate(threads))

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------

    def _successors(self, state: _State) -> Iterator[_State]:
        _, _, threads = state
        for tid, thread in enumerate(threads):
            if thread.buffer:
                yield self._drain_one(state, tid)
            if thread.pc < len(self.program.threads[tid]):
                nxt = self._step_instruction(state, tid)
                if nxt is not None:
                    yield nxt

    def explore(self) -> set[Outcome]:
        """All final outcomes reachable under some schedule."""
        outcomes: dict[tuple, Outcome] = {}
        seen: set[_State] = set()
        stack = [self._initial()]
        while stack:
            state = stack.pop()
            if state in seen:
                continue
            seen.add(state)
            if len(seen) > self.max_states:
                raise RuntimeError(
                    f"state space exceeds {self.max_states} states"
                )
            memory, log, threads = state
            successors = list(self._successors(state))
            if not successors:
                # Only completed runs yield outcomes.  A successor-less
                # state that is not finished is a dead path — a LOCK'd
                # RMW whose reservation was irrecoverably lost — and
                # contributes nothing (mirroring the weak machine).
                if all(
                    thread.pc == len(self.program.threads[tid])
                    and not thread.buffer
                    for tid, thread in enumerate(threads)
                ):
                    outcome = self._outcome(state)
                    outcomes[outcome.key()] = outcome
                continue
            stack.extend(successors)
        return set(outcomes.values())

    def _outcome(self, state: _State) -> Outcome:
        memory, log, threads = state
        registers: dict[tuple[int, str], int] = {}
        committed = set()
        aborted = set()
        for tid, thread in enumerate(threads):
            for reg, value in thread.regs:
                registers[(tid, reg)] = value
            committed.update((tid, txn) for txn in thread.committed)
            aborted.update((tid, txn) for txn in thread.aborted)
        write_orders: dict[str, tuple[int, ...]] = {}
        for loc, value in log:
            write_orders[loc] = write_orders.get(loc, ()) + (value,)
        return Outcome(
            registers=registers,
            memory=dict(memory),
            committed=frozenset(committed),
            aborted=frozenset(aborted),
            write_orders=write_orders,
        )


def reachable_outcomes(program: Program, max_states: int = 200_000) -> set[Outcome]:
    """Convenience wrapper: all outcomes of ``program`` on the machine."""
    return TsoMachine(program, max_states=max_states).explore()
