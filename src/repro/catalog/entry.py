"""Catalog entry type: an execution plus its expected verdicts."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.execution import Execution

__all__ = ["CatalogEntry"]


@dataclass(frozen=True)
class CatalogEntry:
    """A named execution with per-model expectations.

    Attributes:
        name: unique identifier (``fig2``, ``power_exec1``, ``sb``, …).
        description: one-line summary.
        execution: the execution graph itself.
        expected: model name → expected consistency (models not listed
            are not checked for this entry).
        racy: for C++ entries, whether the execution has a data race
            (``None`` when irrelevant).
        paper_ref: where in the paper the shape appears.
        tags: free-form labels used to slice the catalog in tests and
            experiments (e.g. ``{"txn", "classic", "power"}``).
    """

    name: str
    description: str
    execution: Execution
    expected: dict[str, bool]
    racy: bool | None = None
    paper_ref: str = ""
    tags: frozenset[str] = field(default_factory=frozenset)
