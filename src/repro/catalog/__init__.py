"""Catalog of executions: every shape discussed in the paper plus the
classic litmus families, each with expected per-model verdicts."""

from .classic import CLASSIC
from .entry import CatalogEntry
from .figures import FIGURES

CATALOG: dict[str, CatalogEntry] = {**FIGURES, **CLASSIC}

__all__ = ["CATALOG", "CLASSIC", "FIGURES", "CatalogEntry", "get_entry"]


def get_entry(name: str) -> CatalogEntry:
    """Look a catalog entry up by name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise ValueError(f"unknown catalog entry {name!r}") from None
