"""The executions discussed in the paper, figure by figure.

Every entry records the expected verdict under each relevant model; the
test suite asserts all of them, so this module is simultaneously the
paper's "executions corresponding to all the executions discussed in our
paper" companion material and the model validation corpus.
"""

from __future__ import annotations

from ..core.builder import ExecutionBuilder
from ..core.events import Label
from .entry import CatalogEntry

__all__ = ["FIGURES"]

FIGURES: dict[str, CatalogEntry] = {}


def _register(entry: CatalogEntry) -> None:
    if entry.name in FIGURES:
        raise ValueError(f"duplicate figure {entry.name}")
    FIGURES[entry.name] = entry


# ----------------------------------------------------------------------
# Fig. 1: a plain execution and its litmus test
# ----------------------------------------------------------------------


def _fig1() -> CatalogEntry:
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")
    r = t0.read("x")
    c = t1.write("x")
    b.co(a, c)
    b.rf(c, r)
    return CatalogEntry(
        name="fig1",
        description="Fig 1: read observes the other thread's co-later write",
        execution=b.build(),
        expected={
            "sc": True,
            "tsc": True,
            "x86": True,
            "power": True,
            "armv8": True,
        },
        paper_ref="Fig. 1",
        tags=frozenset({"figure"}),
    )


# ----------------------------------------------------------------------
# Fig. 2: the transactional variant
# ----------------------------------------------------------------------


def _fig2() -> CatalogEntry:
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")
    r = t0.read("x")
    c = t1.write("x")
    b.txn([a, r])
    b.co(a, c)
    b.rf(c, r)
    # The transaction writes x, an external write intervenes, and the
    # transaction then reads the external write: strong isolation fails.
    return CatalogEntry(
        name="fig2",
        description="Fig 2: external write intervenes inside a transaction",
        execution=b.build(),
        expected={
            "sc": True,  # plain SC ignores transactions
            "tsc": False,
            "x86": False,
            "power": False,
            "armv8": False,
        },
        paper_ref="Fig. 2",
        tags=frozenset({"figure", "txn"}),
    )


# ----------------------------------------------------------------------
# Fig. 3: the four strong-vs-weak isolation discriminators
# ----------------------------------------------------------------------


def _fig3a() -> CatalogEntry:
    # Non-interference: a txn's two reads bracket an external write.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    r1 = t0.read("x")
    r2 = t0.read("x")
    w = t1.write("x")
    b.txn([r1, r2])
    b.rf(w, r2)  # r1 reads the initial value, so fr(r1, w)
    return CatalogEntry(
        name="fig3a",
        description="Fig 3(a): non-interference — txn reads straddle external write",
        execution=b.build(),
        expected={"sc": True, "tsc": False, "x86": False, "power": False, "armv8": False},
        paper_ref="Fig. 3(a)",
        tags=frozenset({"figure", "txn", "isolation"}),
    )


def _fig3b() -> CatalogEntry:
    # RMW-style isolation: external write between a txn's read and write.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    r = t0.read("x")
    w1 = t0.write("x")
    w2 = t1.write("x")
    b.txn([r, w1])
    b.co(w2, w1)  # r reads initial value; fr(r, w2); co w2 -> w1
    return CatalogEntry(
        name="fig3b",
        description="Fig 3(b): external write between txn read and txn write",
        execution=b.build(),
        expected={"sc": True, "tsc": False, "x86": False, "power": False, "armv8": False},
        paper_ref="Fig. 3(b)",
        tags=frozenset({"figure", "txn", "isolation"}),
    )


def _fig3c() -> CatalogEntry:
    # Txn write, external write co-after it, txn read observes external.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")
    r = t0.read("x")
    w2 = t1.write("x")
    b.txn([w1, r])
    b.co(w1, w2)
    b.rf(w2, r)
    return CatalogEntry(
        name="fig3c",
        description="Fig 3(c): txn read observes external overwrite of txn write",
        execution=b.build(),
        expected={"sc": True, "tsc": False, "x86": False, "power": False, "armv8": False},
        paper_ref="Fig. 3(c)",
        tags=frozenset({"figure", "txn", "isolation"}),
    )


def _fig3d() -> CatalogEntry:
    # Containment: an intermediate txn write leaks to an external read.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")
    w2 = t0.write("x")
    r = t1.read("x")
    b.txn([w1, w2])
    b.co(w1, w2)
    b.rf(w1, r)  # external read sees the txn's intermediate value
    return CatalogEntry(
        name="fig3d",
        description="Fig 3(d): containment — intermediate txn write observed outside",
        execution=b.build(),
        expected={"sc": True, "tsc": False, "x86": False, "power": False, "armv8": False},
        paper_ref="Fig. 3(d)",
        tags=frozenset({"figure", "txn", "isolation"}),
    )


# ----------------------------------------------------------------------
# Section 5.2, execution (1): the Power "integrated memory barrier"
# ----------------------------------------------------------------------


def _power_exec1() -> CatalogEntry:
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    a = t0.write("x")
    r1 = t1.read("x")
    c = t1.write("y")
    d = t2.read("y")
    e = t2.read("x")
    b.txn([r1, c])
    b.rf(a, r1)
    b.rf(c, d)
    b.addr(d, e)  # the figure's ppo edge, realised as an address dep
    # e reads the initial value of x, so fr(e, a).
    return CatalogEntry(
        name="power_exec1",
        description="§5.2 (1): txn write propagates before an observed write (tprop1)",
        execution=b.build(),
        expected={"power": False, "x86": False, "armv8": False},
        paper_ref="§5.2 execution (1)",
        tags=frozenset({"figure", "txn", "power", "wrc"}),
    )


def _power_exec1_no_txn() -> CatalogEntry:
    # The same WRC shape without the transaction is the classic
    # demonstration that Power is not multicopy-atomic: allowed.
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    a = t0.write("x")
    r1 = t1.read("x")
    c = t1.write("y")
    d = t2.read("y")
    e = t2.read("x")
    b.rf(a, r1)
    b.rf(c, d)
    b.data(r1, c)
    b.addr(d, e)
    return CatalogEntry(
        name="power_exec1_no_txn",
        description="WRC+deps without txns: allowed on non-MCA Power, forbidden on MCA ARMv8",
        execution=b.build(),
        expected={"power": True, "armv8": False, "x86": False},
        paper_ref="§5.2 (baseline of execution (1))",
        tags=frozenset({"figure", "power", "wrc"}),
    )


# ----------------------------------------------------------------------
# Remark 5.1: the two ambiguous read-only-transaction shapes
# ----------------------------------------------------------------------


def _remark51a() -> CatalogEntry:
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    a = t0.write("x")
    r1 = t1.read("x")
    r2 = t1.read("y")
    c = t2.write("y")
    t2.fence(Label.SYNC)
    d = t2.read("x")
    b.txn([r1, r2])
    b.rf(a, r1)
    # r2 reads initial y -> fr(r2, c); d reads initial x -> fr(d, a).
    return CatalogEntry(
        name="remark51a",
        description="Remark 5.1 (first): read-only txn, ambiguous in the Power manual; allowed",
        execution=b.build(),
        expected={"power": True},
        paper_ref="Remark 5.1",
        tags=frozenset({"figure", "txn", "power"}),
    )


def _remark51b() -> CatalogEntry:
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    a = t0.write("x")
    r1 = t1.read("x")
    r2 = t1.read("y")
    c = t2.write("y")
    t2.fence(Label.SYNC)
    d = t2.write("x")
    b.txn([r1, r2])
    b.rf(a, r1)
    b.co(d, a)  # the external write to x is co-before the observed one
    # r2 reads initial y -> fr(r2, c).
    return CatalogEntry(
        name="remark51b",
        description="Remark 5.1 (second): read-only txn with external co; allowed",
        execution=b.build(),
        expected={"power": True},
        paper_ref="Remark 5.1",
        tags=frozenset({"figure", "txn", "power"}),
    )


# ----------------------------------------------------------------------
# Section 5.2, execution (2): multicopy-atomicity of transactional writes
# ----------------------------------------------------------------------


def _power_exec2() -> CatalogEntry:
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    a = t0.write("x")
    r1 = t1.read("x")
    c = t1.write("y")
    d = t2.read("y")
    e = t2.read("x")
    b.txn([a])
    b.rf(a, r1)
    b.rf(c, d)
    b.data(r1, c)
    b.addr(d, e)
    # e reads initial x -> fr(e, a).
    return CatalogEntry(
        name="power_exec2",
        description="§5.2 (2): transactional writes are multicopy-atomic (tprop2)",
        execution=b.build(),
        expected={"power": False, "armv8": False},
        paper_ref="§5.2 execution (2)",
        tags=frozenset({"figure", "txn", "power", "wrc"}),
    )


# ----------------------------------------------------------------------
# Section 5.2, execution (3): IRIW with two transactional writes
# ----------------------------------------------------------------------


def _power_exec3(both_txn: bool) -> CatalogEntry:
    b = ExecutionBuilder()
    t0, t1, t2, t3 = b.thread(), b.thread(), b.thread(), b.thread()
    a = t0.write("x")
    r1 = t1.read("x")
    r2 = t1.read("y")
    r3 = t2.read("y")
    r4 = t2.read("x")
    f = t3.write("y")
    b.txn([a])
    if both_txn:
        b.txn([f])
    b.rf(a, r1)
    b.rf(f, r3)
    b.addr(r1, r2)
    b.addr(r3, r4)
    # r2 reads initial y -> fr(r2, f); r4 reads initial x -> fr(r4, a).
    if both_txn:
        return CatalogEntry(
            name="power_exec3",
            description="§5.2 (3): IRIW with two txn writes, forbidden via thb",
            execution=b.build(),
            expected={"power": False, "armv8": False, "x86": False},
            paper_ref="§5.2 execution (3)",
            tags=frozenset({"figure", "txn", "power", "iriw"}),
        )
    return CatalogEntry(
        name="power_exec3_one_txn",
        description="§5.2: IRIW with one txn write, observed on hardware, allowed",
        execution=b.build(),
        expected={"power": True},
        paper_ref="§5.2 (after execution (3))",
        tags=frozenset({"figure", "txn", "power", "iriw"}),
    )


# ----------------------------------------------------------------------
# Section 8.1: the monotonicity counterexample (Power and ARMv8)
# ----------------------------------------------------------------------


def _rmw_split() -> CatalogEntry:
    b = ExecutionBuilder()
    t0 = b.thread()
    r = t0.read("x", Label.EXCL)
    w = t0.write("x", Label.EXCL)
    b.rmw(r, w)
    b.txn([r])
    b.txn([w])
    return CatalogEntry(
        name="rmw_split",
        description="§8.1: rmw straddling txn boundary, forbidden (TxnCancelsRMW)",
        execution=b.build(),
        expected={"power": False, "armv8": False, "x86": True},
        paper_ref="§8.1 counterexample (left)",
        tags=frozenset({"figure", "txn", "monotonicity"}),
    )


def _rmw_coalesced() -> CatalogEntry:
    b = ExecutionBuilder()
    t0 = b.thread()
    r = t0.read("x", Label.EXCL)
    w = t0.write("x", Label.EXCL)
    b.rmw(r, w)
    b.txn([r, w])
    return CatalogEntry(
        name="rmw_coalesced",
        description="§8.1: the coalesced rmw transaction, consistent",
        execution=b.build(),
        expected={"power": True, "armv8": True, "x86": True},
        paper_ref="§8.1 counterexample (right)",
        tags=frozenset({"figure", "txn", "monotonicity"}),
    )


# ----------------------------------------------------------------------
# Section 9: the gap between our Power model and Dongol et al.'s
# ----------------------------------------------------------------------


def _dongol_gap() -> CatalogEntry:
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")
    c = t0.write("y")
    d = t1.read("y")
    e = t1.read("x")
    b.txn([a, c])
    b.rf(c, d)
    b.addr(d, e)
    # e reads initial x -> fr(e, a): MP against a transaction.
    return CatalogEntry(
        name="dongol_gap",
        description="§9: MP against a txn; ours forbids (tprop2), atomicity-only allows",
        execution=b.build(),
        expected={"power": False, "power-dongol": True, "armv8": False},
        paper_ref="§9 comparison execution",
        tags=frozenset({"figure", "txn", "power", "ablation"}),
    )


# ----------------------------------------------------------------------
# Example 1.1 / Fig. 10: lock elision unsound in ARMv8 (concrete side)
# ----------------------------------------------------------------------


def _armv8_lock_elision(with_dmb_fix: bool) -> CatalogEntry:
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    # Left thread: the recommended ARMv8 spinlock around x += 2.
    acq = t0.read("m", Label.ACQ, Label.EXCL)  # LDAXR (reads m == 0, free)
    wm = t0.write("m", Label.EXCL)  # STXR   (m <- 1, taken)
    if with_dmb_fix:
        t0.fence(Label.DMB)
    rx = t0.read("x")  # LDR    (speculative: reads x == 0)
    wx2 = t0.write("x")  # STR    (x <- 2)
    wrel = t0.write("m", Label.REL)  # STLR   (m <- 0, release)
    # Right thread: the elided critical region inside a transaction.
    rm = t1.read("m")  # LDR m (sees the lock free: initial value)
    wx1 = t1.write("x")  # STR x <- 1
    b.txn([rm, wx1])
    b.rmw(acq, wm)
    b.ctrl(acq, wm)
    b.data(rx, wx2)
    b.co_order("x", [wx1, wx2])  # final x == 2: mutual-exclusion violation
    b.co_order("m", [wm, wrel])
    # All reads observe initial values (rf is empty):
    #   fr(acq, wm), fr(acq, wrel) are internal;
    #   fr(rx, wx1) and fr(rm, wm), fr(rm, wrel) are the external edges.
    expected = {"armv8": not with_dmb_fix, "x86": False}
    name = "armv8_lock_elision_fixed" if with_dmb_fix else "armv8_lock_elision"
    what = "forbidden after the DMB fix" if with_dmb_fix else "ALLOWED: lock elision unsound"
    return CatalogEntry(
        name=name,
        description=f"Example 1.1 concrete execution; {what}",
        execution=b.build(),
        expected=expected,
        paper_ref="Example 1.1 / Fig. 10",
        tags=frozenset({"figure", "txn", "armv8", "lock-elision"}),
    )


def _armv8_lock_elision_b() -> CatalogEntry:
    # Appendix B: an external load observes an intermediate write because
    # stores can also be speculated past an incomplete store-exclusive.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    acq = t0.read("m", Label.ACQ, Label.EXCL)
    wm = t0.write("m", Label.EXCL)
    wx1 = t0.write("x")  # x <- 1 (intermediate)
    wx2 = t0.write("x")  # x <- 2
    wrel = t0.write("m", Label.REL)
    rm = t1.read("m")
    rx = t1.read("x")  # observes the intermediate x == 1
    b.txn([rm, rx])
    b.rmw(acq, wm)
    b.ctrl(acq, wm)
    b.rf(wx1, rx)
    b.co_order("x", [wx1, wx2])
    b.co_order("m", [wm, wrel])
    return CatalogEntry(
        name="armv8_lock_elision_b",
        description="Appendix B: elided CR observes an intermediate store; allowed",
        execution=b.build(),
        expected={"armv8": True},
        paper_ref="Appendix B",
        tags=frozenset({"figure", "txn", "armv8", "lock-elision"}),
    )


# ----------------------------------------------------------------------
# C++ figures (section 7)
# ----------------------------------------------------------------------


def _mp_dmb_txn_reader() -> CatalogEntry:
    # Forbidden by TxnOrder *alone*: the barrier orders the writes, the
    # transaction must observe them atomically, but no com cycle exists,
    # so StrongIsol is satisfied.  This is the shape that exposes the
    # RTL prototype's TxnOrder bug (section 6.2).
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wx = t0.write("x")
    t0.fence(Label.DMB)
    wy = t0.write("y")
    ry = t1.read("y")
    rx = t1.read("x")
    b.txn([ry, rx])
    b.rf(wy, ry)
    # rx reads the initial x: fr(rx, wx).
    # Power reads the DMB as an unknown (no-op) fence and, with the txn
    # covering its whole thread, tfence is empty — so Power's verdict is
    # "allowed", illustrating that tbegin/tend barriers exist only at
    # boundary *crossings* in the paper's model.
    return CatalogEntry(
        name="mp_dmb_txn_reader",
        description="§6.2: MP with fenced writer and txn reader, TxnOrder-only violation",
        execution=b.build(),
        expected={"armv8": False, "x86": False, "power": True},
        paper_ref="§6.2 (RTL bug shape)",
        tags=frozenset({"figure", "txn", "armv8", "rtl"}),
    )


def _cpp_racy_txn() -> CatalogEntry:
    # atomic{ x = 1; } || atomic_store(&x, 2): racy despite the txn.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")  # non-atomic store inside an atomic transaction
    w2 = t1.atomic_write("x", Label.SC)
    b.txn([w1], atomic=True)
    b.co(w1, w2)
    return CatalogEntry(
        name="cpp_racy_txn",
        description="§7.2: atomic txn with non-atomic store races with atomic store",
        execution=b.build(),
        expected={"cpp": True},
        racy=True,
        paper_ref="§7.2 (Transactions and Data Races)",
        tags=frozenset({"figure", "txn", "cpp"}),
    )


def _cpp_tsw_cycle() -> CatalogEntry:
    # Two conflicting relaxed transactions must serialise: a communication
    # cycle between them is inconsistent via tsw ⊆ hb (the §7.2 encoding).
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")
    r1 = t0.read("y")
    w2 = t1.write("y")
    r2 = t1.read("x")
    b.txn([w1, r1])
    b.txn([w2, r2])
    # r1 reads initial y (fr to w2), r2 reads initial x (fr to w1):
    # ecom cycle T0 -> T1 -> T0.
    return CatalogEntry(
        name="cpp_tsw_cycle",
        description="§7.2: SB between two relaxed txns, forbidden via tsw",
        execution=b.build(),
        expected={"cpp": False, "x86": False, "power": False, "armv8": False},
        racy=False,
        paper_ref="§7.2 (Transactional Synchronisation)",
        tags=frozenset({"figure", "txn", "cpp"}),
    )


def _cpp_weak_isolation_ok() -> CatalogEntry:
    # A relaxed transaction is only weakly isolated: non-transactional
    # atomic interference is allowed (contrast with fig3c on hardware).
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.atomic_write("x")
    r = t0.atomic_read("x")
    w2 = t1.atomic_write("x")
    b.txn([w1, r])
    b.co(w1, w2)
    b.rf(w2, r)
    return CatalogEntry(
        name="cpp_weak_isolation_ok",
        description="§7: relaxed txn admits non-transactional interference",
        execution=b.build(),
        expected={"cpp": True},
        racy=False,
        paper_ref="§7.2",
        tags=frozenset({"figure", "txn", "cpp"}),
    )


def _build_figures() -> None:
    _register(_fig1())
    _register(_fig2())
    _register(_fig3a())
    _register(_fig3b())
    _register(_fig3c())
    _register(_fig3d())
    _register(_power_exec1())
    _register(_power_exec1_no_txn())
    _register(_remark51a())
    _register(_remark51b())
    _register(_power_exec2())
    _register(_power_exec3(both_txn=True))
    _register(_power_exec3(both_txn=False))
    _register(_rmw_split())
    _register(_rmw_coalesced())
    _register(_dongol_gap())
    _register(_armv8_lock_elision(with_dmb_fix=False))
    _register(_armv8_lock_elision(with_dmb_fix=True))
    _register(_armv8_lock_elision_b())
    _register(_mp_dmb_txn_reader())
    _register(_cpp_racy_txn())
    _register(_cpp_tsw_cycle())
    _register(_cpp_weak_isolation_ok())


_build_figures()
