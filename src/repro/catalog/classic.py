"""The classic litmus families, with and without fences/dependencies/
transactions, and their textbook verdicts under each model.

These verdicts are the standard, extensively-validated results of the
weak-memory literature (Alglave et al. [5], Pulte et al. [45], Lahav et
al. [38]); asserting them in the test suite pins our baseline models to
the published semantics before the TM extensions are exercised.
"""

from __future__ import annotations

from ..core.builder import ExecutionBuilder
from ..core.events import Label
from .entry import CatalogEntry

__all__ = ["CLASSIC"]

CLASSIC: dict[str, CatalogEntry] = {}


def _register(entry: CatalogEntry) -> None:
    if entry.name in CLASSIC:
        raise ValueError(f"duplicate classic entry {entry.name}")
    CLASSIC[entry.name] = entry


# ----------------------------------------------------------------------
# SB: store buffering
# ----------------------------------------------------------------------


def _sb(fences: str | None = None, txn: str = "") -> ExecutionBuilder:
    """SB skeleton: Wx; Ry || Wy; Rx with both reads seeing initials."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w0 = t0.write("x")
    if fences:
        t0.fence(fences)
    r0 = t0.read("y")
    w1 = t1.write("y")
    if fences:
        t1.fence(fences)
    r1 = t1.read("x")
    if "0" in txn:
        b.txn([t0.events[0], *t0.events[1:]])
    if "1" in txn:
        b.txn([t1.events[0], *t1.events[1:]])
    return b


def _build_sb() -> None:
    _register(
        CatalogEntry(
            name="sb",
            description="store buffering, no fences",
            execution=_sb().build(),
            expected={
                "sc": False,
                "x86": True,
                "power": True,
                "armv8": True,
                "cpp": True,  # relaxed-atomics analogue is allowed
            },
            paper_ref="classic",
            tags=frozenset({"classic", "sb"}),
        )
    )
    _register(
        CatalogEntry(
            name="sb_mfence",
            description="SB with MFENCEs: forbidden on x86",
            execution=_sb(fences=Label.MFENCE).build(),
            expected={"x86": False},
            paper_ref="classic",
            tags=frozenset({"classic", "sb"}),
        )
    )
    _register(
        CatalogEntry(
            name="sb_sync",
            description="SB with syncs: forbidden on Power",
            execution=_sb(fences=Label.SYNC).build(),
            expected={"power": False},
            paper_ref="classic",
            tags=frozenset({"classic", "sb"}),
        )
    )
    _register(
        CatalogEntry(
            name="sb_lwsync",
            description="SB with lwsyncs: still allowed on Power (W->R not cumulated)",
            execution=_sb(fences=Label.LWSYNC).build(),
            expected={"power": True},
            paper_ref="classic",
            tags=frozenset({"classic", "sb"}),
        )
    )
    _register(
        CatalogEntry(
            name="sb_dmb",
            description="SB with DMBs: forbidden on ARMv8",
            execution=_sb(fences=Label.DMB).build(),
            expected={"armv8": False},
            paper_ref="classic",
            tags=frozenset({"classic", "sb"}),
        )
    )
    _register(
        CatalogEntry(
            name="sb_txn_both",
            description="SB with both threads transactional: serialisation forbids",
            execution=_sb(txn="01").build(),
            expected={"x86": False, "power": False, "armv8": False, "tsc": False},
            paper_ref="§5 (transactional serialisation)",
            tags=frozenset({"classic", "sb", "txn"}),
        )
    )
    _register(
        CatalogEntry(
            name="sb_txn_one",
            description="SB with one thread transactional: still allowed",
            execution=_sb(txn="0").build(),
            expected={"x86": True, "power": True, "armv8": True},
            paper_ref="§5",
            tags=frozenset({"classic", "sb", "txn"}),
        )
    )


# ----------------------------------------------------------------------
# MP: message passing
# ----------------------------------------------------------------------


def _mp(
    fence0: str | None = None,
    dep1: str | None = None,
    rel_acq: bool = False,
    txn: str = "",
) -> ExecutionBuilder:
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wd = t0.write("x")
    if fence0:
        t0.fence(fence0)
    wf = t0.write("y", *((Label.REL,) if rel_acq else ()))
    rf_ = t1.read("y", *((Label.ACQ,) if rel_acq else ()))
    rd = t1.read("x")
    b.rf(wf, rf_)
    if dep1:
        getattr(b, dep1)(rf_, rd)
    if "0" in txn:
        b.txn(t0.events)
    if "1" in txn:
        b.txn(t1.events)
    # rd reads the initial x: fr(rd, wd) closes the cycle.
    return b


def _build_mp() -> None:
    _register(
        CatalogEntry(
            name="mp",
            description="message passing, no fences or deps",
            execution=_mp().build(),
            expected={"sc": False, "x86": False, "power": True, "armv8": True},
            paper_ref="classic",
            tags=frozenset({"classic", "mp"}),
        )
    )
    _register(
        CatalogEntry(
            name="mp_lwsync_addr",
            description="MP with lwsync + addr dep: forbidden on Power",
            execution=_mp(fence0=Label.LWSYNC, dep1="addr").build(),
            expected={"power": False},
            paper_ref="classic",
            tags=frozenset({"classic", "mp"}),
        )
    )
    _register(
        CatalogEntry(
            name="mp_sync_only_writer",
            description="MP with sync on writer only: still allowed on Power",
            execution=_mp(fence0=Label.SYNC).build(),
            expected={"power": True},
            paper_ref="classic",
            tags=frozenset({"classic", "mp"}),
        )
    )
    _register(
        CatalogEntry(
            name="mp_dmb_addr",
            description="MP with DMB + addr dep: forbidden on ARMv8",
            execution=_mp(fence0=Label.DMB, dep1="addr").build(),
            expected={"armv8": False},
            paper_ref="classic",
            tags=frozenset({"classic", "mp"}),
        )
    )
    _register(
        CatalogEntry(
            name="mp_rel_acq",
            description="MP with release write / acquire read: forbidden on ARMv8",
            execution=_mp(rel_acq=True).build(),
            expected={"armv8": False},
            paper_ref="classic",
            tags=frozenset({"classic", "mp"}),
        )
    )
    _register(
        CatalogEntry(
            name="mp_txn_both",
            description="MP with both threads transactional: forbidden everywhere",
            execution=_mp(txn="01").build(),
            expected={"x86": False, "power": False, "armv8": False},
            paper_ref="§5",
            tags=frozenset({"classic", "mp", "txn"}),
        )
    )
    _register(
        CatalogEntry(
            name="mp_txn_writer",
            description="MP with transactional writer: forbidden on Power (tprop2+tfence)",
            execution=_mp(txn="0").build(),
            expected={"x86": False},
            paper_ref="§5",
            tags=frozenset({"classic", "mp", "txn"}),
        )
    )


# ----------------------------------------------------------------------
# LB: load buffering
# ----------------------------------------------------------------------


def _lb(deps: bool = False, txn: str = "") -> ExecutionBuilder:
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    r0 = t0.read("x")
    w0 = t0.write("y")
    r1 = t1.read("y")
    w1 = t1.write("x")
    b.rf(w0, r1)
    b.rf(w1, r0)
    if deps:
        b.data(r0, w0)
        b.data(r1, w1)
    if "0" in txn:
        b.txn(t0.events)
    if "1" in txn:
        b.txn(t1.events)
    return b


def _build_lb() -> None:
    _register(
        CatalogEntry(
            name="lb",
            description="load buffering, no deps",
            execution=_lb().build(),
            expected={
                "sc": False,
                "x86": False,  # TSO preserves R->W
                "power": True,
                "armv8": True,
                "cpp": False,  # RC11's NoThinAir (acyclic(po ∪ rf)) rejects LB
            },
            paper_ref="classic",
            tags=frozenset({"classic", "lb"}),
        )
    )
    _register(
        CatalogEntry(
            name="lb_deps",
            description="LB with data deps: forbidden on Power/ARMv8",
            execution=_lb(deps=True).build(),
            expected={"power": False, "armv8": False},
            paper_ref="classic",
            tags=frozenset({"classic", "lb"}),
        )
    )
    _register(
        CatalogEntry(
            name="lb_txn_both",
            description="LB with both threads transactional: forbidden",
            execution=_lb(txn="01").build(),
            expected={"power": False, "armv8": False},
            paper_ref="§5",
            tags=frozenset({"classic", "lb", "txn"}),
        )
    )


# ----------------------------------------------------------------------
# WRC: write-to-read causality
# ----------------------------------------------------------------------


def _wrc(deps: bool = True, fence1: str | None = None) -> ExecutionBuilder:
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    a = t0.write("x")
    r1 = t1.read("x")
    c = t1.write("y")
    d = t2.read("y")
    e = t2.read("x")
    b.rf(a, r1)
    b.rf(c, d)
    if fence1:
        # rebuild middle thread with a fence between read and write: the
        # builder appends in order, so insert via a fresh builder.
        raise NotImplementedError
    if deps:
        b.data(r1, c)
        b.addr(d, e)
    return b


def _wrc_sync() -> ExecutionBuilder:
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    a = t0.write("x")
    r1 = t1.read("x")
    t1.fence(Label.SYNC)
    c = t1.write("y")
    d = t2.read("y")
    e = t2.read("x")
    b.rf(a, r1)
    b.rf(c, d)
    b.addr(d, e)
    return b


def _build_wrc() -> None:
    _register(
        CatalogEntry(
            name="wrc_deps",
            description="WRC with deps: allowed on Power (non-MCA), forbidden on ARMv8 (MCA)",
            execution=_wrc(deps=True).build(),
            expected={"power": True, "armv8": False, "x86": False},
            paper_ref="classic",
            tags=frozenset({"classic", "wrc"}),
        )
    )
    _register(
        CatalogEntry(
            name="wrc_sync",
            description="WRC with sync in observer thread: forbidden on Power",
            execution=_wrc_sync().build(),
            expected={"power": False},
            paper_ref="classic",
            tags=frozenset({"classic", "wrc"}),
        )
    )


# ----------------------------------------------------------------------
# IRIW: independent reads of independent writes
# ----------------------------------------------------------------------


def _iriw(deps: bool = False, sync: bool = False) -> ExecutionBuilder:
    b = ExecutionBuilder()
    t0, t1, t2, t3 = b.thread(), b.thread(), b.thread(), b.thread()
    a = t0.write("x")
    r1 = t1.read("x")
    if sync:
        t1.fence(Label.SYNC)
    r2 = t1.read("y")
    r3 = t2.read("y")
    if sync:
        t2.fence(Label.SYNC)
    r4 = t2.read("x")
    f = t3.write("y")
    b.rf(a, r1)
    b.rf(f, r3)
    if deps:
        b.addr(r1, r2)
        b.addr(r3, r4)
    return b


def _build_iriw() -> None:
    _register(
        CatalogEntry(
            name="iriw",
            description="IRIW, plain: allowed on Power/ARMv8, forbidden on x86",
            execution=_iriw().build(),
            expected={"x86": False, "power": True, "armv8": True},
            paper_ref="classic",
            tags=frozenset({"classic", "iriw"}),
        )
    )
    _register(
        CatalogEntry(
            name="iriw_addrs",
            description="IRIW with addr deps: allowed on Power (non-MCA), forbidden on ARMv8",
            execution=_iriw(deps=True).build(),
            expected={"power": True, "armv8": False},
            paper_ref="classic",
            tags=frozenset({"classic", "iriw"}),
        )
    )
    _register(
        CatalogEntry(
            name="iriw_syncs",
            description="IRIW with syncs: forbidden on Power",
            execution=_iriw(sync=True).build(),
            expected={"power": False},
            paper_ref="classic",
            tags=frozenset({"classic", "iriw"}),
        )
    )


# ----------------------------------------------------------------------
# 2+2W and coherence shapes
# ----------------------------------------------------------------------


def _build_misc() -> None:
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wx2 = t0.write("x")
    wy1 = t0.write("y")
    wy2 = t1.write("y")
    wx1 = t1.write("x")
    b.co_order("x", [wx1, wx2])
    b.co_order("y", [wy1, wy2])
    _register(
        CatalogEntry(
            name="2+2w",
            description="2+2W, plain: allowed on Power/ARMv8, forbidden on x86",
            execution=b.build(),
            expected={"x86": False, "power": True, "armv8": True, "sc": False},
            paper_ref="classic",
            tags=frozenset({"classic"}),
        )
    )

    # CoRR: coherence of read-read on a single location.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")
    r1 = t1.read("x")
    r2 = t1.read("x")
    b.rf(w1, r1)  # then r2 reads the initial value: co-earlier
    _register(
        CatalogEntry(
            name="corr",
            description="CoRR: reads of one location must respect coherence",
            execution=b.build(),
            expected={"sc": False, "x86": False, "power": False, "armv8": False, "cpp": False},
            paper_ref="classic",
            tags=frozenset({"classic", "coherence"}),
        )
    )

    # CoWW-in-txn: a transaction observing its own write is fine.
    b = ExecutionBuilder()
    t0 = b.thread()
    w = t0.write("x")
    r = t0.read("x")
    b.rf(w, r)
    b.txn([w, r])
    _register(
        CatalogEntry(
            name="txn_reads_own_write",
            description="a transaction reads its own write: consistent",
            execution=b.build(),
            expected={"x86": True, "power": True, "armv8": True, "tsc": True},
            paper_ref="sanity",
            tags=frozenset({"classic", "txn"}),
        )
    )

    # x86 RMW isolation: a LOCK'd RMW with an intervening external write.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    r = t0.read("x")
    w = t0.write("x")
    wext = t1.write("x")
    b.rmw(r, w)
    b.co_order("x", [wext, w])  # r reads initial, fr(r, wext), co(wext, w)
    _register(
        CatalogEntry(
            name="rmw_intervene",
            description="external write between the halves of an RMW: forbidden",
            execution=b.build(),
            expected={"x86": False, "power": False, "armv8": False},
            paper_ref="RMWIsol",
            tags=frozenset({"classic", "rmw"}),
        )
    )


# ----------------------------------------------------------------------
# C++-specific shapes
# ----------------------------------------------------------------------


def _build_cpp() -> None:
    # MP with release/acquire atomics: forbidden (sw creates hb).
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wd = t0.write("x")
    wf = t0.atomic_write("y", Label.REL)
    rf_ = t1.atomic_read("y", Label.ACQ)
    rd = t1.read("x")
    b.rf(wf, rf_)
    _register(
        CatalogEntry(
            name="cpp_mp_rel_acq",
            description="C++ MP with rel/acq: forbidden, race-free",
            execution=b.build(),
            expected={"cpp": False},
            racy=False,
            paper_ref="classic C++",
            tags=frozenset({"classic", "cpp", "mp"}),
        )
    )

    # Same MP with relaxed atomics: allowed but the data read races? No:
    # allowed outcome means rd reads initial x while wd happened — without
    # hb between wd and rd there IS a race on x.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wd = t0.write("x")
    wf = t0.atomic_write("y", Label.RLX)
    rf_ = t1.atomic_read("y", Label.RLX)
    rd = t1.read("x")
    b.rf(wf, rf_)
    _register(
        CatalogEntry(
            name="cpp_mp_rlx",
            description="C++ MP with relaxed flag: consistent but racy on the data",
            execution=b.build(),
            expected={"cpp": True},
            racy=True,
            paper_ref="classic C++",
            tags=frozenset({"classic", "cpp", "mp"}),
        )
    )

    # SB with SC atomics: forbidden by SeqCst.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    t0.atomic_write("x", Label.SC)
    t0.atomic_read("y", Label.SC)
    t1.atomic_write("y", Label.SC)
    t1.atomic_read("x", Label.SC)
    _register(
        CatalogEntry(
            name="cpp_sb_sc",
            description="C++ SB with SC atomics: forbidden by SeqCst",
            execution=b.build(),
            expected={"cpp": False},
            racy=False,
            paper_ref="classic C++",
            tags=frozenset({"classic", "cpp", "sb"}),
        )
    )

    # SB with relaxed atomics: allowed.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    t0.atomic_write("x", Label.RLX)
    t0.atomic_read("y", Label.RLX)
    t1.atomic_write("y", Label.RLX)
    t1.atomic_read("x", Label.RLX)
    _register(
        CatalogEntry(
            name="cpp_sb_rlx",
            description="C++ SB with relaxed atomics: allowed",
            execution=b.build(),
            expected={"cpp": True},
            racy=False,
            paper_ref="classic C++",
            tags=frozenset({"classic", "cpp", "sb"}),
        )
    )

    # Atomic transactions around conflicting non-atomics: the txns
    # serialise (tsw), so there is no race and SC semantics hold.
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")
    w2 = t1.write("x")
    b.txn([w1], atomic=True)
    b.txn([w2], atomic=True)
    b.co(w1, w2)
    _register(
        CatalogEntry(
            name="cpp_txn_serialise",
            description="two atomic txns on one location: consistent and race-free",
            execution=b.build(),
            expected={"cpp": True},
            racy=False,
            paper_ref="§7",
            tags=frozenset({"classic", "cpp", "txn"}),
        )
    )


def _build_all() -> None:
    _build_sb()
    _build_mp()
    _build_lb()
    _build_wrc()
    _build_iriw()
    _build_misc()
    _build_cpp()


_build_all()
