"""Wire types for the campaign service.

One job = one suite × model matrix.  Suites cross the wire as
*descriptions*, not payloads — the server owns the test sources (litmus
files on its filesystem, the built-in catalog, synthesized diy cycles),
exactly like herd sweeping a directory it can read.  The JSON shapes
here are the single source of truth for the HTTP API in
:mod:`repro.serve.server`; see ``src/repro/serve/README.md`` for the
endpoint map.

A ``JobSpec``::

    {"suite": {"kind": "files", "paths": ["tests/corpus/..."]}
             | {"kind": "diy", "arch": "x86", "vocab": null, "length": 3}
             | {"kind": "catalog", "names": null, "tags": null},
     "models": ["x86", "x86tm"],
     "options": {"cell_timeout": 60.0, "retries": 1, "shards": null,
                 "batch": null, "codegen": null}}

``batch`` overrides the candidate chunk size for the batched
consistency kernels for this job (``0`` selects the scalar path),
``codegen`` forces the generated-kernel tier on/off; ``null`` keeps the
server's environment defaults.  Neither changes verdicts — the tiers
are differentially tested bit-identical — so cached cells stay valid
across jobs with different knobs.

Job lifecycle: ``queued`` → ``running`` → ``done`` | ``failed``.  A job
*fails* only when its suite cannot be built (bad paths, bad model
specs); checker crashes, timeouts, and dead workers degrade to poisoned
cells inside a ``done`` job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_STATES",
    "JobSpec",
    "SpecError",
    "DEFAULT_PORT",
]

#: Bumped when request/response shapes change incompatibly; the server
#: stamps it on every response envelope.
PROTOCOL_VERSION = 1

#: Default TCP port for ``repro serve`` (chosen from the unassigned
#: range; override with ``--port`` / ``$REPRO_SERVE_URL``).
DEFAULT_PORT = 7907

JOB_STATES = ("queued", "running", "done", "failed")

SUITE_KINDS = ("files", "diy", "catalog")


class SpecError(ValueError):
    """A malformed job spec (HTTP 400 at the server boundary)."""


@dataclass
class JobSpec:
    """A validated submit request (see the module docstring)."""

    suite: dict
    models: list[str]
    cell_timeout: float = 60.0
    retries: int = 1
    shards: int | None = None
    batch: int | None = None
    codegen: bool | None = None
    label: str = ""

    @classmethod
    def from_dict(cls, data: object) -> "JobSpec":
        if not isinstance(data, dict):
            raise SpecError("job spec must be a JSON object")
        suite = data.get("suite")
        if not isinstance(suite, dict):
            raise SpecError("job spec needs a 'suite' object")
        kind = suite.get("kind")
        if kind not in SUITE_KINDS:
            raise SpecError(
                f"suite.kind must be one of {SUITE_KINDS}, got {kind!r}"
            )
        if kind == "files":
            paths = suite.get("paths")
            if not isinstance(paths, list) or not all(
                isinstance(p, str) for p in paths
            ):
                raise SpecError("files suite needs 'paths': [str, ...]")
            if not paths:
                raise SpecError("files suite has no paths")
        models = data.get("models")
        if (
            not isinstance(models, list)
            or not models
            or not all(isinstance(m, str) for m in models)
        ):
            raise SpecError("job spec needs 'models': [spec, ...]")
        options = data.get("options") or {}
        if not isinstance(options, dict):
            raise SpecError("'options' must be an object")
        try:
            cell_timeout = float(options.get("cell_timeout", 60.0))
            retries = int(options.get("retries", 1))
            shards = options.get("shards")
            shards = None if shards is None else int(shards)
            batch = options.get("batch")
            batch = None if batch is None else int(batch)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"bad option value: {exc}") from None
        if cell_timeout <= 0:
            raise SpecError("cell_timeout must be positive")
        if retries < 0:
            raise SpecError("retries must be >= 0")
        if shards is not None and shards < 1:
            raise SpecError("shards must be >= 1")
        if batch is not None and batch < 0:
            raise SpecError("batch must be >= 0")
        codegen = options.get("codegen")
        if codegen is not None and not isinstance(codegen, bool):
            raise SpecError("codegen must be true, false, or null")
        label = str(data.get("label", "") or "")
        return cls(
            suite=dict(suite),
            models=list(models),
            cell_timeout=cell_timeout,
            retries=retries,
            shards=shards,
            batch=batch,
            codegen=codegen,
            label=label,
        )

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "models": self.models,
            "options": {
                "cell_timeout": self.cell_timeout,
                "retries": self.retries,
                "shards": self.shards,
                "batch": self.batch,
                "codegen": self.codegen,
            },
            "label": self.label,
        }

    def default_label(self) -> str:
        kind = self.suite.get("kind")
        if kind == "files":
            return f"files:{len(self.suite['paths'])}"
        if kind == "diy":
            return f"diy:{self.suite.get('arch', 'x86')}"
        return "catalog"


def suite_items(suite: dict) -> list:
    """Build the campaign items a suite description names.

    Raises ``SpecError`` for unreadable files / unknown entries — the
    submit-time failure mode that marks a job ``failed``.
    """
    from ..engine import catalog_suite, diy_suite, litmus_suite

    kind = suite.get("kind")
    try:
        if kind == "files":
            return litmus_suite(suite["paths"])
        if kind == "diy":
            return diy_suite(
                suite.get("arch", "x86"),
                suite.get("vocab"),
                suite.get("length", 3),
            )
        return catalog_suite(suite.get("names"), suite.get("tags"))
    except SpecError:
        raise
    except Exception as exc:
        raise SpecError(f"cannot build suite: {exc}") from exc
