"""The campaign service: submit suite × model jobs, stream verdicts.

A long-running front end over the campaign engine, in four layers:

* :mod:`~repro.serve.protocol` — the JSON job-spec / job-record wire
  shapes and their validation;
* :mod:`~repro.serve.service` — the scheduler: a job queue executed one
  campaign at a time over the engine's worker pool, with resilient
  per-shard dispatch (timeouts, bounded retries, poisoned cells) and a
  shared on-disk result store refreshed per job for fleet-wide dedupe;
* :mod:`~repro.serve.server` — the stdlib HTTP face (``/v1/jobs``,
  cursor-polled ``/cells``, ``/metrics``, ``/healthz``);
* :mod:`~repro.serve.client` — the matching urllib client with
  streaming/waiting poll loops.

Quickstart (in process)::

    from repro.serve import CampaignService, JobSpec

    service = CampaignService(jobs=4).start()
    job = service.submit(JobSpec.from_dict({
        "suite": {"kind": "diy", "arch": "x86", "length": 3},
        "models": ["x86", "x86tm"],
    }))

Over HTTP: ``repro serve`` on the server side, ``repro submit`` /
``repro jobs`` (or :class:`ServiceClient`) on the client side.  See
``src/repro/serve/README.md`` for the protocol reference.
"""

from .client import ServiceClient, ServiceError
from .protocol import (
    DEFAULT_PORT,
    JOB_STATES,
    PROTOCOL_VERSION,
    JobSpec,
    SpecError,
)
from .server import ServiceServer, serve_forever
from .service import CampaignService, Job

__all__ = [
    "CampaignService",
    "DEFAULT_PORT",
    "JOB_STATES",
    "Job",
    "JobSpec",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SpecError",
    "serve_forever",
]
