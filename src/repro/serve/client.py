"""A stdlib HTTP client for the campaign service.

Wraps the ``/v1`` endpoints in typed-ish methods and adds the two
polling loops clients actually want: :meth:`ServiceClient.iter_cells`
(stream cells as the job computes them, cursor-managed) and
:meth:`ServiceClient.wait` (block until the job leaves the queue).
Used by ``repro submit`` / ``repro jobs`` and the service tests.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator

from .protocol import JobSpec

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """A transport failure or an error envelope from the service."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One service endpoint (``http://host:port``), stateless."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", str(exc)
                )
            except Exception:
                message = str(exc)
            raise ServiceError(message, status=exc.code) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}"
            ) from None
        if "error" in payload:
            raise ServiceError(str(payload["error"]))
        return payload

    # -- endpoints -------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics_text(self) -> str:
        request = urllib.request.Request(f"{self.base_url}/v1/metrics")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}"
            ) from None

    def submit(self, spec: "JobSpec | dict") -> dict:
        body = spec.to_dict() if isinstance(spec, JobSpec) else spec
        return self._request("POST", "/v1/jobs", body)["job"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def cells(self, job_id: str, since: int = 0) -> dict:
        return self._request(
            "GET", f"/v1/jobs/{job_id}/cells?since={since}"
        )

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")

    # -- polling loops ---------------------------------------------------

    def iter_cells(
        self,
        job_id: str,
        interval: float = 0.2,
        timeout: float | None = None,
    ) -> Iterator[dict]:
        """Yield each cell of a job exactly once, as it lands.

        Polls ``/cells`` with a managed cursor until the job reaches a
        terminal state *and* the tail has been drained.  Raises
        :class:`ServiceError` on a ``failed`` job or an expired
        ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        while True:
            payload = self.cells(job_id, since=cursor)
            cursor = payload["next"]
            yield from payload["cells"]
            state = payload["state"]
            if state == "failed":
                raise ServiceError(
                    f"job {job_id} failed: "
                    f"{self.job(job_id).get('error')}"
                )
            if state == "done" and not payload["cells"]:
                return
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {state} after {timeout}s"
                )
            if not payload["cells"]:
                time.sleep(interval)

    def wait(
        self,
        job_id: str,
        interval: float = 0.2,
        timeout: float | None = None,
    ) -> dict:
        """Block until the job is ``done``/``failed``; returns its
        record (a ``failed`` job returns rather than raises — callers
        inspect ``error``)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed"):
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(interval)
