"""The HTTP face of the campaign service (stdlib only).

A thin JSON layer over :class:`~repro.serve.service.CampaignService`
using :class:`http.server.ThreadingHTTPServer` — handler threads only
read service state under its lock or enqueue jobs; all checking work
stays on the service's scheduler thread and its worker pool.

Endpoints (all JSON unless noted)::

    GET  /v1/healthz              liveness + queue depth
    GET  /v1/metrics              service metrics (Prometheus text)
    POST /v1/jobs                 submit a JobSpec -> job record
    GET  /v1/jobs                 list job records
    GET  /v1/jobs/<id>            one job record
    GET  /v1/jobs/<id>/cells?since=N   cells past the cursor + state
    POST /v1/shutdown             stop serving (finishes current job)

Every response body is an envelope ``{"protocol": 1, ...}``; errors
are ``{"protocol": 1, "error": "..."}`` with a 4xx/5xx status.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .protocol import DEFAULT_PORT, PROTOCOL_VERSION, JobSpec, SpecError
from .service import CampaignService

__all__ = ["ServiceServer", "serve_forever"]

#: Submit bodies larger than this are rejected outright (a files suite
#: carries paths, not file contents — legitimate specs are tiny).
MAX_BODY = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """One request; the service rides on the server object."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(
            {"protocol": PROTOCOL_VERSION, **payload}, sort_keys=True
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY:
            raise SpecError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("empty request body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SpecError(f"request body is not JSON: {exc}") from None

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "healthz"]:
                jobs = self.service.list_jobs()
                self._send(
                    200,
                    {
                        "ok": True,
                        "jobs": len(jobs),
                        "queued": sum(
                            1 for j in jobs if j["state"] == "queued"
                        ),
                        "running": sum(
                            1 for j in jobs if j["state"] == "running"
                        ),
                    },
                )
            elif parts == ["v1", "metrics"]:
                self._send_text(200, self.service.metrics.render_text())
            elif parts == ["v1", "jobs"]:
                self._send(200, {"jobs": self.service.list_jobs()})
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                job = self.service.job(parts[2])
                if job is None:
                    self._error(404, f"no job {parts[2]!r}")
                else:
                    self._send(200, {"job": job.summary()})
            elif (
                len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "cells"
            ):
                try:
                    since = int(
                        parse_qs(url.query).get("since", ["0"])[0]
                    )
                except ValueError:
                    self._error(400, "bad 'since' cursor")
                    return
                payload = self.service.cells_since(parts[2], since)
                if payload is None:
                    self._error(404, f"no job {parts[2]!r}")
                else:
                    self._send(200, payload)
            else:
                self._error(404, f"no route GET {url.path}")
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # defensive: a handler bug is a 500
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "jobs"]:
                try:
                    spec = JobSpec.from_dict(self._read_json())
                    job = self.service.submit(spec)
                except SpecError as exc:
                    self._error(400, str(exc))
                    return
                self._send(201, {"job": job.summary()})
            elif parts == ["v1", "shutdown"]:
                self._send(200, {"ok": True})
                # Out-of-band so the response flushes before the server
                # stops accepting; the current job runs to completion.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
            else:
                self._error(404, f"no route POST {url.path}")
        except BrokenPipeError:
            pass
        except Exception as exc:
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception:
                pass


class ServiceServer:
    """A bound HTTP server wrapping one :class:`CampaignService`.

    ``serve_forever`` blocks; ``start_background`` runs the accept loop
    on a daemon thread (tests, embedding).  Either way the service's
    scheduler thread is started with the server and stopped with it.
    """

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = service  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self.service.start()
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        finally:
            self.close()

    def start_background(self) -> "ServiceServer":
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.httpd.server_close()
        self.service.stop()

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_forever(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    verbose: bool = False,
) -> None:
    """Bind, announce, and serve until shutdown (the CLI entry)."""
    server = ServiceServer(service, host=host, port=port, verbose=verbose)
    print(f"repro serve: listening on {server.url}")
    server.serve_forever()
