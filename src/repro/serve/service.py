"""The campaign service: a job queue over the engine's worker pool.

:class:`CampaignService` owns one shared :class:`~repro.engine.cache.
ResultCache` and executes submitted jobs (suite × model matrices) one
at a time on a scheduler thread — model-checking is CPU-bound, so jobs
multiplex the *worker pool*, not each other, and the process-global
telemetry bundle stays unambiguous.  Within a job:

* ``cache.refresh()`` runs first, so verdicts appended by other
  processes (or previous jobs) since the last read are served as cached
  cells immediately — concurrent clients submitting overlapping suites
  dedupe fleet-wide through the shared store;
* pending units are sharded round-robin across the pool and dispatched
  via :func:`~repro.engine.pool.resilient_map` with a per-shard timeout
  budget of ``cell_timeout × cells-in-shard`` and bounded retries; a
  shard whose worker dies or hangs past its budget degrades to
  *poisoned* cells (``error`` set, verdict ``False``, never cached) —
  one bad checker can poison its cells, never the job;
* results stream into the job's append-only cell log as they land, so
  clients poll with a cursor (``since``) and see cells while the job
  still runs;
* on completion the job writes a run manifest (keyed by the job id)
  with verdict/cache/stage/latency aggregates.

A job *fails* only when its suite or model list cannot be built; every
execution-time failure degrades to cells within a ``done`` job.
"""

from __future__ import annotations

import queue
import threading
import time

from ..engine import batchsweep
from ..engine.cache import NullCache, ResultCache, cache_key, fingerprint
from ..engine.campaign import (
    CampaignResult,
    CellResult,
    _definition_token,
    _run_unit,
)
from ..engine.checkers import Checker, resolve_checker
from ..engine.pool import PoisonedTask, default_jobs, resilient_map
from ..obs import manifest as obs_manifest
from ..obs import metrics as obs_metrics
from ..obs import telemetry as obs_telemetry
from ..obs import trace
from .protocol import JobSpec, SpecError, suite_items

__all__ = ["Job", "CampaignService"]


def _run_shard(shard):
    """One pool task: the shard's units through the batched prefill
    (:func:`~repro.engine.batchsweep.run_shard`) plus the per-cell
    fallback.  Module-level so it pickles; returns ``(rows,
    telemetry-snapshot)`` pairs in the per-unit shape.
    """
    return batchsweep.run_shard(shard)


def _spec_of(entry) -> str:
    return entry.spec if isinstance(entry, Checker) else str(entry)


def _effective_batch(spec: JobSpec) -> int:
    if spec.batch is not None:
        return spec.batch
    from ..litmus.candidates import batch_size

    return batch_size()


def _effective_codegen(spec: JobSpec) -> bool:
    if spec.codegen is not None:
        return spec.codegen
    from ..ir import codegen

    return codegen.enabled()


class Job:
    """One submitted suite × model matrix and its streaming results.

    ``cells`` is append-only: each element is a JSON-ready dict with a
    monotonically increasing ``seq``, so ``cells[since:]`` is a stable
    poll cursor.  All mutation happens under the owning service's lock.
    """

    __slots__ = (
        "id",
        "spec",
        "label",
        "state",
        "created",
        "started",
        "finished",
        "error",
        "cells",
        "total_cells",
        "cached_cells",
        "computed_cells",
        "error_cells",
        "poisoned_cells",
        "diffs",
        "manifest_path",
    )

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.label = spec.label or spec.default_label()
        self.state = "queued"
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.error: str | None = None
        self.cells: list[dict] = []
        self.total_cells = 0
        self.cached_cells = 0
        self.computed_cells = 0
        self.error_cells = 0
        self.poisoned_cells = 0
        self.diffs = 0
        self.manifest_path: str | None = None

    @property
    def elapsed(self) -> float:
        if self.started is None:
            return 0.0
        end = self.finished if self.finished is not None else time.time()
        return end - self.started

    def summary(self) -> dict:
        """The JSON job record served by the API."""
        return {
            "id": self.id,
            "state": self.state,
            "label": self.label,
            "suite": self.spec.suite,
            "models": self.spec.models,
            "created": round(self.created, 6),
            "started": self.started,
            "finished": self.finished,
            "elapsed_seconds": round(self.elapsed, 6),
            "error": self.error,
            "cells": {
                "total": self.total_cells,
                "done": len(self.cells),
                "cached": self.cached_cells,
                "computed": self.computed_cells,
                "errors": self.error_cells,
                "poisoned": self.poisoned_cells,
            },
            "diffs": self.diffs,
            "manifest": self.manifest_path,
        }


class CampaignService:
    """The job scheduler behind ``repro serve`` (see the module
    docstring for the execution model).

    Args:
        jobs: worker processes per campaign (``1`` = serial in the
            scheduler thread, with the batched prefill; ``0`` = one per
            CPU).
        cell_timeout: default per-cell seconds a submit may override;
            a shard's budget is ``cell_timeout × its cell count``.
        retries: default re-runs for a shard whose worker died or hung.
        shards: pool tasks per job (default ``4 × jobs``, capped by the
            unit count).
        cache: a ready :class:`ResultCache`/:class:`NullCache`; built
            from ``cache_dir`` when omitted.
        runs_dir: manifest directory (``.repro-cache/runs`` default).
        telemetry: record a per-job telemetry bundle (spans, metrics)
            when none is already active, feeding the job manifest.
    """

    def __init__(
        self,
        jobs: int = 1,
        cell_timeout: float = 60.0,
        retries: int = 1,
        shards: int | None = None,
        cache=None,
        cache_dir=None,
        runs_dir=None,
        telemetry: bool = True,
    ) -> None:
        self.jobs = jobs
        self.cell_timeout = cell_timeout
        self.retries = retries
        self.shards = shards
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.runs_dir = runs_dir
        self.telemetry = telemetry
        #: Service-level instruments (private registry — job telemetry
        #: uses the process-global bundle), rendered by ``/v1/metrics``.
        self.metrics = obs_metrics.MetricsRegistry()
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._seq = 0
        self._thread: threading.Thread | None = None
        self._stopping = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "CampaignService":
        """Start the scheduler thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-serve-scheduler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Stop after the current job; queued jobs stay ``queued``."""
        with self._lock:
            self._stopping = True
        self._queue.put(None)
        if wait and self._thread is not None:
            self._thread.join()
            self._thread = None
        self.cache.close()

    # -- API surface -----------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Queue one job; raises :class:`SpecError` on a bad model spec
        (suite construction errors surface as a ``failed`` job — they
        may touch the filesystem and must not block the caller)."""
        for model in spec.models:
            try:
                resolve_checker(model)
            except Exception as exc:
                raise SpecError(f"bad model spec {model!r}: {exc}") from exc
        if len(set(spec.models)) != len(spec.models):
            raise SpecError(f"duplicate model specs in {spec.models}")
        with self._lock:
            if self._stopping:
                raise SpecError("service is shutting down")
            self._seq += 1
            job = Job(f"j{self._seq:04d}", spec)
            self._jobs[job.id] = job
            self._order.append(job.id)
        self.metrics.counter("jobs_submitted").inc()
        self._queue.put(job.id)
        return job

    def job(self, job_id: str) -> "Job | None":
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[dict]:
        with self._lock:
            return [self._jobs[jid].summary() for jid in self._order]

    def cells_since(self, job_id: str, since: int) -> "dict | None":
        """The poll payload: cells past the cursor plus the job state."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            since = max(0, min(since, len(job.cells)))
            return {
                "job": job.id,
                "state": job.state,
                "total": job.total_cells,
                "next": len(job.cells),
                "cells": list(job.cells[since:]),
            }

    # -- scheduler -------------------------------------------------------

    def _loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self._jobs[job_id]
            try:
                self._execute(job)
                self.metrics.counter("jobs_completed").inc()
            except SpecError as exc:
                self._fail(job, str(exc))
            except Exception as exc:  # defensive: a job bug, not a cell
                self._fail(job, f"{type(exc).__name__}: {exc}")

    def _fail(self, job: Job, message: str) -> None:
        with self._lock:
            job.state = "failed"
            job.error = message
            job.finished = time.time()
        self.metrics.counter("jobs_failed").inc()

    def _deliver(self, job: Job, cell: dict) -> None:
        with self._lock:
            cell["seq"] = len(job.cells)
            job.cells.append(cell)
            if cell["cached"]:
                job.cached_cells += 1
            else:
                job.computed_cells += 1
            if cell["error"] is not None:
                job.error_cells += 1
                if cell.pop("poisoned", False):
                    job.poisoned_cells += 1
            else:
                cell.pop("poisoned", None)

    # -- execution -------------------------------------------------------

    def _execute(self, job: Job) -> None:
        with self._lock:
            job.state = "running"
            job.started = time.time()

        bundle = None
        if self.telemetry and obs_telemetry.active() is None:
            bundle = obs_telemetry.enable()
        try:
            self._run_job(job)
        finally:
            if bundle is not None:
                obs_telemetry.disable()

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        items = suite_items(spec.suite)  # SpecError -> failed job
        checkers = [resolve_checker(model) for model in spec.models]
        by_spec = dict(zip(spec.models, checkers))
        names = [item.name for item in items]
        if len(set(names)) != len(names):
            raise SpecError("duplicate item names in suite")
        with self._lock:
            job.total_cells = len(items) * len(spec.models)

        # Fold in whatever other processes (or earlier jobs) appended
        # since we last read the store — this refresh is the fleet-wide
        # dedupe point.
        folded = self.cache.refresh()
        if folded:
            self.metrics.counter("cache_records_refreshed").inc(folded)

        caching = not isinstance(self.cache, NullCache)
        definitions = {
            model: _definition_token(checker)
            for model, checker in by_spec.items()
        }
        keys: dict[tuple[str, str], str] = {}
        pending: dict[str, list[str]] = {}
        for item in items:
            item_fp = fingerprint(item.payload) if caching else None
            for model in spec.models:
                record = None
                if caching:
                    key = cache_key(item_fp, model, definitions[model])
                    keys[(item.name, model)] = key
                    record = self.cache.get(key)
                if record is not None:
                    self._deliver(
                        job,
                        {
                            "item": item.name,
                            "model": model,
                            "verdict": bool(record["verdict"]),
                            "elapsed": float(record.get("elapsed", 0.0)),
                            "cached": True,
                            "error": None,
                        },
                    )
                else:
                    pending.setdefault(item.name, []).append(model)

        telemetry_on = trace.ACTIVE is not None
        by_name = {item.name: item for item in items}
        units = [
            (
                name,
                by_name[name].payload,
                tuple(by_spec[model] for model in models),
                telemetry_on,
            )
            for name, models in pending.items()
        ]

        # Per-job evaluation knobs: the overrides are process globals
        # (workers fork at dispatch time and inherit them), applied for
        # exactly this job's span — jobs are executed one at a time, so
        # there is no cross-job bleed.  The knobs pick an evaluation
        # tier, never a verdict: the tiers are differentially tested
        # bit-identical, so cached cells stay valid either way.
        from ..ir import codegen
        from ..litmus.candidates import set_batch_size

        try:
            if spec.batch is not None:
                set_batch_size(spec.batch)
            if spec.codegen is not None:
                codegen.set_enabled(spec.codegen)
            if self.jobs == 1:
                self._run_serial(job, units, keys, caching)
            else:
                self._run_sharded(job, units, keys, caching)
        finally:
            if spec.batch is not None:
                set_batch_size(None)
            if spec.codegen is not None:
                codegen.set_enabled(None)

        self._finish(job, items, spec.models)

    def _cache_row(self, job, keys, caching, name, model, verdict, elapsed):
        if caching:
            self.cache.put(
                keys[(name, model)],
                {
                    "verdict": verdict,
                    "elapsed": round(elapsed, 6),
                    "item": name,
                    "model": model,
                },
            )

    def _deliver_rows(self, job: Job, rows, keys, caching) -> None:
        for name, model, verdict, elapsed, error in rows:
            self._deliver(
                job,
                {
                    "item": name,
                    "model": model,
                    "verdict": verdict,
                    "elapsed": elapsed,
                    "cached": False,
                    "error": error,
                },
            )
            if error is None:  # never cache a crash as a verdict
                self._cache_row(
                    job, keys, caching, name, model, verdict, elapsed
                )

    def _run_serial(self, job: Job, units, keys, caching) -> None:
        """jobs == 1: the batched prefill plus a streaming per-unit
        loop.  A checker crash is already a per-cell error row; a crash
        *outside* the checker (expansion, resolution) poisons exactly
        its unit's cells.  Timeouts are not preemptible in-process."""
        if units:
            from ..engine.batchsweep import prefill_units

            prefilled, covered = prefill_units(units)
            if covered:
                self._deliver_rows(job, prefilled, keys, caching)
                units = [
                    (
                        name,
                        payload,
                        tuple(
                            entry
                            for entry in specs
                            if (name, _spec_of(entry)) not in covered
                        ),
                        tel,
                    )
                    for name, payload, specs, tel in units
                ]
                units = [unit for unit in units if unit[2]]
        for unit in units:
            try:
                rows, snap = _run_unit(unit)
            except Exception as exc:
                rows = [
                    (
                        unit[0],
                        _spec_of(entry),
                        False,
                        0.0,
                        f"{type(exc).__name__}: {exc}",
                    )
                    for entry in unit[2]
                ]
                snap = None
            obs_telemetry.merge_snapshot(snap)
            self._deliver_rows(job, rows, keys, caching)

    def _run_sharded(self, job: Job, units, keys, caching) -> None:
        """jobs != 1: batch-aware shards over ``resilient_map``.

        Shards are assembled by :func:`~repro.engine.batchsweep.
        assemble_shards` — units sorted by estimated universe size and
        cut into contiguous cell-balanced chunks — so each worker's
        batched prefill sweeps whole universe buckets instead of the
        one-of-each scatter round-robin produced.  The retry/poison
        granularity is the shard — the unit of pool dispatch.  A
        poisoned shard yields one poisoned cell per (item, model) pair
        it carried; the rest of the job is unaffected.
        """
        if not units:
            return
        spec = job.spec
        worker_count = self.jobs or default_jobs()
        n_shards = spec.shards or self.shards or max(1, 4 * worker_count)
        shard_list = batchsweep.assemble_shards(units, n_shards)
        budget = spec.cell_timeout * max(
            sum(len(u[2]) for u in shard) for shard in shard_list
        )
        outcomes = resilient_map(
            _run_shard,
            shard_list,
            jobs=self.jobs,
            timeout=budget,
            retries=spec.retries,
        )
        for shard, outcome in zip(shard_list, outcomes):
            if isinstance(outcome, PoisonedTask):
                self.metrics.counter("shards_poisoned").inc()
                for name, _payload, entries, _tel in shard:
                    for entry in entries:
                        self._deliver(
                            job,
                            {
                                "item": name,
                                "model": _spec_of(entry),
                                "verdict": False,
                                "elapsed": 0.0,
                                "cached": False,
                                "error": outcome.error,
                                "poisoned": True,
                            },
                        )
                continue
            for rows, snap in outcome:
                obs_telemetry.merge_snapshot(snap)
                self._deliver_rows(job, rows, keys, caching)

    def _finish(self, job: Job, items, models) -> None:
        """Assemble the campaign-result view, write the job manifest,
        and flip the job to ``done``."""
        cells = {
            (cell["item"], cell["model"]): CellResult(
                cell["verdict"],
                cell["elapsed"],
                cached=cell["cached"],
                error=cell["error"],
            )
            for cell in job.cells
        }
        result = CampaignResult(
            item_names=[item.name for item in items],
            model_specs=list(models),
            cells=cells,
            elapsed=job.elapsed,
            cache_hits=job.cached_cells,
            cache_misses=job.computed_cells,
        )
        diffs = len(result.diffs(items))
        manifest_path = None
        try:
            manifest = obs_manifest.from_campaign(
                result,
                kind="campaign",
                label=f"job:{job.id}:{job.label}",
                items=items,
                cache=self.cache,
                run_id=self._manifest_run_id(job),
                extra={
                    "job": job.id,
                    "poisoned": job.poisoned_cells,
                    # The effective evaluation knobs, so a manifest
                    # records which tier produced its timings.
                    "batch": _effective_batch(job.spec),
                    "codegen": _effective_codegen(job.spec),
                },
            )
            manifest_path = str(
                obs_manifest.write_manifest(manifest, self.runs_dir)
            )
        except Exception:
            # The verdicts are the product; a manifest write failure
            # (read-only runs dir, full disk) must not fail the job.
            pass
        with self._lock:
            job.state = "done"
            job.finished = time.time()
            job.diffs = diffs
            job.manifest_path = manifest_path
        self.metrics.counter("cells_cached_served").inc(job.cached_cells)
        self.metrics.counter("cells_computed").inc(job.computed_cells)
        self.metrics.counter("cells_poisoned").inc(job.poisoned_cells)
        self.metrics.histogram("job_seconds").observe(job.elapsed)

    def _manifest_run_id(self, job: Job) -> str:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(job.started))
        return f"{stamp}-{job.id}"
