"""Render litmus tests in per-architecture surface syntax.

The output mirrors the style of the paper's examples: x86 TSX mnemonics
(Fig. 2's ``XBEGIN``/``XEND``), Power's ``tbegin.``/``tend.``, the
representative ARMv8 ``TXBEGIN``/``TXEND`` of Example 1.1, and the C++ TM
technical specification's ``atomic {}``/``synchronized {}`` blocks.

These renderings are for human consumption and for diffing against the
paper; the machine-checked semantics lives in
:mod:`repro.litmus.candidates`.
"""

from __future__ import annotations

from ..core.events import Label
from .program import CtrlBranch, Fence, Load, Store, TxAbort, TxBegin, TxEnd
from .test import CoSeq, LitmusTest, MemEq, RegEq, TxnOk

__all__ = [
    "render",
    "render_x86",
    "render_power",
    "render_armv8",
    "render_riscv",
    "render_cpp",
]

_X86_REGS = ["EAX", "EBX", "ECX", "EDX", "ESI", "EDI", "R8D", "R9D"]
_X86_FENCES = {Label.MFENCE: "MFENCE"}
_POWER_FENCES = {Label.SYNC: "sync", Label.LWSYNC: "lwsync", Label.ISYNC: "isync"}
_ARM_FENCES = {
    Label.DMB: "DMB SY",
    Label.DMB_LD: "DMB LD",
    Label.DMB_ST: "DMB ST",
    Label.ISB: "ISB",
}


def render(test: LitmusTest) -> str:
    """Dispatch on the test's architecture tag."""
    renderers = {
        "x86": render_x86,
        "power": render_power,
        "armv8": render_armv8,
        "riscv": render_riscv,
        "cpp": render_cpp,
        "sc": render_armv8,  # SC/TSC tests display in a neutral RISC syntax
        "tsc": render_armv8,
    }
    try:
        return renderers[test.arch](test)
    except KeyError:
        raise ValueError(f"no renderer for architecture {test.arch!r}") from None


def _columns(threads: list[list[str]]) -> str:
    """Typeset per-thread instruction lists side by side."""
    width = max((len(line) for col in threads for line in col), default=0)
    height = max((len(col) for col in threads), default=0)
    header = " | ".join(f"P{i}".ljust(width) for i in range(len(threads)))
    rows = [header, "-+-".join("-" * width for _ in threads)]
    for i in range(height):
        cells = [
            (col[i] if i < len(col) else "").ljust(width) for col in threads
        ]
        rows.append(" | ".join(cells))
    return "\n".join(rows)


def _init_line(test: LitmusTest) -> str:
    locs = test.program.locations()
    parts = [f"{loc}={test.init.get(loc, 0)}" for loc in locs]
    return "{ " + "; ".join(parts) + " }"


def _exists_line(test: LitmusTest, reg_name) -> str:
    parts = []
    for atom in test.postcondition:
        if isinstance(atom, RegEq):
            parts.append(f"{atom.tid}:{reg_name(atom.tid, atom.reg)}={atom.value}")
        elif isinstance(atom, MemEq):
            parts.append(f"{atom.loc}={atom.value}")
        elif isinstance(atom, TxnOk):
            state = "ok" if atom.ok else "aborted"
            parts.append(f"txn{atom.index}@P{atom.tid}={state}")
        elif isinstance(atom, CoSeq):
            chain = "->".join(str(v) for v in atom.values)
            parts.append(f"co({atom.loc})={chain}")
    return "exists (" + " /\\ ".join(parts) + ")"


# ----------------------------------------------------------------------
# x86
# ----------------------------------------------------------------------


def render_x86(test: LitmusTest) -> str:
    def reg_name(tid: int, reg: str) -> str:
        return _X86_REGS[int(reg.lstrip("r")) % len(_X86_REGS)]

    threads = []
    for tid, thread in enumerate(test.program.threads):
        lines: list[str] = []
        txn = 0
        pending_excl: dict[str, str] = {}
        for instr in thread:
            if isinstance(instr, TxBegin):
                lines.append(f"XBEGIN fail{txn}")
            elif isinstance(instr, TxAbort):
                if instr.reg is not None:
                    lines.append(f"TEST {reg_name(tid, instr.reg)}; JZ ok{txn}")
                lines.append("XABORT $0")
                if instr.reg is not None:
                    lines.append(f"ok{txn}:")
            elif isinstance(instr, TxEnd):
                lines.append("XEND")
                txn += 1
            elif isinstance(instr, Fence):
                lines.append(_X86_FENCES.get(instr.kind, instr.kind.upper()))
            elif isinstance(instr, CtrlBranch):
                for reg in instr.regs:
                    lines.append(f"TEST {reg_name(tid, reg)}; JNE skip")
            elif isinstance(instr, Load):
                if instr.excl:
                    # The load half of a LOCK'd RMW; rendered at the store.
                    pending_excl[instr.loc] = instr.dst
                    continue
                lines.append(f"MOV {reg_name(tid, instr.dst)},[{instr.loc}]")
            elif isinstance(instr, Store):
                if instr.excl and instr.loc in pending_excl:
                    dst = pending_excl.pop(instr.loc)
                    lines.append(
                        f"LOCK XCHG [{instr.loc}],${instr.value} "
                        f"; old -> {reg_name(tid, dst)}"
                    )
                else:
                    lines.append(f"MOV [{instr.loc}],${instr.value}")
        threads.append(lines)
    return "\n".join(
        [
            f"X86 {test.name}",
            _init_line(test),
            _columns(threads),
            _exists_line(test, reg_name),
        ]
    )


# ----------------------------------------------------------------------
# Power
# ----------------------------------------------------------------------


def render_power(test: LitmusTest) -> str:
    def reg_name(tid: int, reg: str) -> str:
        return "r" + str(int(reg.lstrip("r")) + 1)

    threads = []
    for tid, thread in enumerate(test.program.threads):
        lines: list[str] = []
        scratch = 10
        for instr in thread:
            if isinstance(instr, TxBegin):
                lines.append("tbegin.")
                lines.append("beq fail")
            elif isinstance(instr, TxAbort):
                if instr.reg is not None:
                    lines.append(f"cmpwi {reg_name(tid, instr.reg)},0")
                    lines.append("beq ok")
                lines.append("tabort. 0")
                if instr.reg is not None:
                    lines.append("ok:")
            elif isinstance(instr, TxEnd):
                lines.append("tend.")
            elif isinstance(instr, Fence):
                lines.append(_POWER_FENCES.get(instr.kind, instr.kind))
            elif isinstance(instr, CtrlBranch):
                for reg in instr.regs:
                    lines.append(f"cmpwi {reg_name(tid, reg)},0")
                    lines.append("bne skip")
            elif isinstance(instr, Load):
                op = "lwarx" if instr.excl else "lwz"
                addr = f"0({instr.loc})"
                if instr.addr_dep:
                    mix = reg_name(tid, instr.addr_dep[0])
                    lines.append(f"xor r{scratch},{mix},{mix}")
                    addr = f"r{scratch}({instr.loc})"
                    scratch += 1
                suffix = ",0" if instr.excl else ""
                lines.append(f"{op} {reg_name(tid, instr.dst)},{addr}{suffix}")
            elif isinstance(instr, Store):
                value_reg = f"r{scratch}"
                scratch += 1
                if instr.data_dep:
                    mix = reg_name(tid, instr.data_dep[0])
                    lines.append(f"xor {value_reg},{mix},{mix}")
                    lines.append(f"addi {value_reg},{value_reg},{instr.value}")
                else:
                    lines.append(f"li {value_reg},{instr.value}")
                op = "stwcx." if instr.excl else "stw"
                lines.append(f"{op} {value_reg},0({instr.loc})")
                if instr.excl:
                    lines.append("bne fail")
        threads.append(lines)
    return "\n".join(
        [
            f"PPC {test.name}",
            _init_line(test),
            _columns(threads),
            _exists_line(test, reg_name),
        ]
    )


# ----------------------------------------------------------------------
# ARMv8
# ----------------------------------------------------------------------


def render_armv8(test: LitmusTest) -> str:
    def reg_name(tid: int, reg: str) -> str:
        return "W" + str(int(reg.lstrip("r")))

    threads = []
    for tid, thread in enumerate(test.program.threads):
        lines: list[str] = []
        scratch = 10
        txn = 0
        for instr in thread:
            if isinstance(instr, TxBegin):
                lines.append(f"TXBEGIN fail{txn}")
            elif isinstance(instr, TxAbort):
                if instr.reg is not None:
                    lines.append(f"CBZ {reg_name(tid, instr.reg)},L{txn}")
                lines.append("TXABORT")
                if instr.reg is not None:
                    lines.append(f"L{txn}:")
            elif isinstance(instr, TxEnd):
                lines.append("TXEND")
                txn += 1
            elif isinstance(instr, Fence):
                lines.append(_ARM_FENCES.get(instr.kind, instr.kind.upper()))
            elif isinstance(instr, CtrlBranch):
                for reg in instr.regs:
                    lines.append(f"CBNZ {reg_name(tid, reg)},skip")
            elif isinstance(instr, Load):
                acq = Label.ACQ in instr.labels
                op = {
                    (False, False): "LDR",
                    (True, False): "LDAR",
                    (False, True): "LDXR",
                    (True, True): "LDAXR",
                }[(acq, instr.excl)]
                addr = f"[{instr.loc}]"
                if instr.addr_dep:
                    mix = reg_name(tid, instr.addr_dep[0])
                    lines.append(f"EOR W{scratch},{mix},{mix}")
                    addr = f"[{instr.loc},W{scratch}]"
                    scratch += 1
                lines.append(f"{op} {reg_name(tid, instr.dst)},{addr}")
            elif isinstance(instr, Store):
                value_reg = f"W{scratch}"
                scratch += 1
                if instr.data_dep:
                    mix = reg_name(tid, instr.data_dep[0])
                    lines.append(f"EOR {value_reg},{mix},{mix}")
                    lines.append(f"ADD {value_reg},{value_reg},#{instr.value}")
                else:
                    lines.append(f"MOV {value_reg},#{instr.value}")
                rel = Label.REL in instr.labels
                if instr.excl:
                    status = f"W{scratch}"
                    scratch += 1
                    op = "STLXR" if rel else "STXR"
                    lines.append(f"{op} {status},{value_reg},[{instr.loc}]")
                    lines.append(f"CBNZ {status},retry")
                else:
                    op = "STLR" if rel else "STR"
                    lines.append(f"{op} {value_reg},[{instr.loc}]")
        threads.append(lines)
    return "\n".join(
        [
            f"AArch64 {test.name}",
            _init_line(test),
            _columns(threads),
            _exists_line(test, reg_name),
        ]
    )


# ----------------------------------------------------------------------
# RISC-V
# ----------------------------------------------------------------------

_RISCV_FENCES = {
    Label.FENCE_RW_RW: "fence rw,rw",
    Label.FENCE_R_RW: "fence r,rw",
    Label.FENCE_RW_W: "fence rw,w",
    Label.FENCE_TSO: "fence.tso",
}


def render_riscv(test: LitmusTest) -> str:
    """RISC-V assembly surface syntax.

    Loads/stores use ``lw``/``sw`` with the location's address held in a
    symbolic register; acquire/release annotate the LR/SC/AMO forms as
    ``.aq``/``.rl``.  The TM mnemonics (``tx.begin``/``tx.abort``/
    ``tx.end``) are unofficial — RISC-V has no ratified TM extension —
    exactly as the paper's ARMv8 mnemonics are "unofficial but
    representative" (Example 1.1).
    """

    def reg_name(tid: int, reg: str) -> str:
        return "x" + str(int(reg.lstrip("r")) + 5)

    threads = []
    for tid, thread in enumerate(test.program.threads):
        lines: list[str] = []
        scratch = 28
        txn = 0
        for instr in thread:
            if isinstance(instr, TxBegin):
                lines.append(f"tx.begin fail{txn}")
            elif isinstance(instr, TxAbort):
                if instr.reg is not None:
                    lines.append(f"beqz {reg_name(tid, instr.reg)},L{txn}")
                lines.append("tx.abort")
                if instr.reg is not None:
                    lines.append(f"L{txn}:")
            elif isinstance(instr, TxEnd):
                lines.append("tx.end")
                txn += 1
            elif isinstance(instr, Fence):
                lines.append(_RISCV_FENCES.get(instr.kind, instr.kind))
            elif isinstance(instr, CtrlBranch):
                for reg in instr.regs:
                    lines.append(f"bnez {reg_name(tid, reg)},skip")
            elif isinstance(instr, Load):
                acq = ".aq" if Label.ACQ in instr.labels else ""
                addr = f"0({instr.loc})"
                if instr.addr_dep:
                    mix = reg_name(tid, instr.addr_dep[0])
                    lines.append(f"xor x{scratch},{mix},{mix}")
                    lines.append(f"add x{scratch},x{scratch},{instr.loc}")
                    addr = f"0(x{scratch})"
                    scratch += 1
                if instr.excl:
                    lines.append(f"lr.w{acq} {reg_name(tid, instr.dst)},{addr}")
                elif acq:
                    # plain acquire load: amoor.w.aq with x0 idiom
                    lines.append(
                        f"amoor.w.aq {reg_name(tid, instr.dst)},x0,{addr}"
                    )
                else:
                    lines.append(f"lw {reg_name(tid, instr.dst)},{addr}")
            elif isinstance(instr, Store):
                value_reg = f"x{scratch}"
                scratch += 1
                if instr.data_dep:
                    mix = reg_name(tid, instr.data_dep[0])
                    lines.append(f"xor {value_reg},{mix},{mix}")
                    lines.append(f"addi {value_reg},{value_reg},{instr.value}")
                else:
                    lines.append(f"li {value_reg},{instr.value}")
                rel = ".rl" if Label.REL in instr.labels else ""
                if instr.excl:
                    status = f"x{scratch}"
                    scratch += 1
                    lines.append(
                        f"sc.w{rel} {status},{value_reg},0({instr.loc})"
                    )
                    lines.append(f"bnez {status},retry")
                elif rel:
                    lines.append(
                        f"amoswap.w.rl x0,{value_reg},0({instr.loc})"
                    )
                else:
                    lines.append(f"sw {value_reg},0({instr.loc})")
        threads.append(lines)
    return "\n".join(
        [
            f"RISCV {test.name}",
            _init_line(test),
            _columns(threads),
            _exists_line(test, reg_name),
        ]
    )


# ----------------------------------------------------------------------
# C++
# ----------------------------------------------------------------------

_CPP_ORDERS = {
    Label.RLX: "memory_order_relaxed",
    Label.ACQ: "memory_order_acquire",
    Label.REL: "memory_order_release",
    Label.ACQ_REL: "memory_order_acq_rel",
    Label.SC: "memory_order_seq_cst",
}


def render_cpp(test: LitmusTest) -> str:
    atomics = set()
    for _, _, store in test.program.stores():
        if Label.ATO in store.labels:
            atomics.add(store.loc)
    for _, _, load in test.program.loads():
        if Label.ATO in load.labels:
            atomics.add(load.loc)

    decls = []
    for loc in test.program.locations():
        init = test.init.get(loc, 0)
        if loc in atomics:
            decls.append(f"std::atomic<int> {loc}{{{init}}};")
        else:
            decls.append(f"int {loc} = {init};")

    blocks = []
    for tid, thread in enumerate(test.program.threads):
        lines = [f"// thread {tid}"]
        indent = "  "
        for instr in thread:
            if isinstance(instr, TxBegin):
                kw = "atomic" if instr.atomic else "synchronized"
                lines.append(f"{indent}{kw} {{")
                indent += "  "
            elif isinstance(instr, TxAbort):
                if instr.reg is not None:
                    lines.append(f"{indent}if ({instr.reg}) abort();")
                else:
                    lines.append(f"{indent}abort();")
            elif isinstance(instr, TxEnd):
                indent = indent[:-2]
                lines.append(f"{indent}}}")
            elif isinstance(instr, Fence):
                order = _CPP_ORDERS.get(instr.kind, instr.kind)
                lines.append(f"{indent}std::atomic_thread_fence({order});")
            elif isinstance(instr, CtrlBranch):
                conds = " && ".join(f"{r}" for r in instr.regs)
                lines.append(f"{indent}if ({conds}) {{}}")
            elif isinstance(instr, Load):
                mode = next(
                    (m for m in _CPP_ORDERS if m in instr.labels), None
                )
                if Label.ATO in instr.labels and mode:
                    lines.append(
                        f"{indent}int {instr.dst} = "
                        f"{instr.loc}.load({_CPP_ORDERS[mode]});"
                    )
                else:
                    lines.append(f"{indent}int {instr.dst} = {instr.loc};")
            elif isinstance(instr, Store):
                mode = next(
                    (m for m in _CPP_ORDERS if m in instr.labels), None
                )
                if Label.ATO in instr.labels and mode:
                    lines.append(
                        f"{indent}{instr.loc}.store({instr.value}, "
                        f"{_CPP_ORDERS[mode]});"
                    )
                else:
                    lines.append(f"{indent}{instr.loc} = {instr.value};")
        blocks.append("\n".join(lines))

    def reg_name(tid: int, reg: str) -> str:
        return reg

    return "\n".join(
        [
            f"// C++ {test.name}",
            "\n".join(decls),
            "\n\n".join(blocks),
            "// " + _exists_line(test, reg_name),
        ]
    )
