"""x86 litmus dialect: ``MOV``/``MFENCE``, TSX ``XBEGIN``/``XEND``.

Parses the herd7 x86 surface syntax (``MOV [x],$1`` stores, ``MOV
EAX,[x]`` loads, ``MFENCE``) plus the paper's TSX mnemonics (Fig. 2),
gated on the ``(* repro: txn *)`` pragma.

Two encodings extend herd7, both documented in the dialect table of
``src/repro/litmus/README.md``:

* ``LOCK MOV`` marks the load/store *halves* of a LOCK'd RMW — the
  neutral IR models exclusives as separate events with a constant
  store value, which ``XCHG``'s register-valued store cannot express
  (``XCHG`` is rejected with a diagnostic saying so);
* ``XABORT EAX`` is a conditional abort (abort iff the register is
  non-zero — the lock-elision self-abort idiom), alongside the
  standard unconditional ``XABORT $imm``.
"""

from __future__ import annotations

import re

from ...core.events import Label
from ..program import Fence, Load, Store, TxAbort, TxBegin, TxEnd
from .common import Dialect, FrontendError, ThreadState

__all__ = ["X86Dialect"]

_NAMED = ["EAX", "EBX", "ECX", "EDX", "ESI", "EDI"]
_NAMED_64 = {f"R{n[1:]}": i for i, n in enumerate(_NAMED)}  # RAX, RBX, ...
_WIDE = re.compile(r"^R(\d+)D?$")
_ADDR = re.compile(r"^\[(\w+)\]$")


class X86Dialect(Dialect):
    arch = "x86"
    tags = ("X86", "X86_64")
    txn_mnemonics = "XBEGIN/XEND/XABORT"

    def reg_of_neutral(self, neutral: str) -> str:
        idx = int(neutral[1:])
        return _NAMED[idx] if idx < len(_NAMED) else f"R{idx + 2}D"

    def neutral_of_reg(self, name: str) -> str | None:
        if name in _NAMED:
            return f"r{_NAMED.index(name)}"
        if name in _NAMED_64:
            return f"r{_NAMED_64[name]}"
        m = _WIDE.match(name)
        if m and int(m.group(1)) >= 8:
            return f"r{int(m.group(1)) - 2}"
        return None

    # ------------------------------------------------------------------

    def parse_cell(
        self, state: ThreadState, text: str, lineno: int, txn_ok: bool
    ) -> None:
        excl = False
        upper = text.upper()
        if upper.startswith("LOCK "):
            excl = True
            text = text[5:].strip()
            upper = text.upper()
        op, _, rest = text.partition(" ")
        op = op.upper()
        args = [a.strip() for a in rest.split(",")] if rest.strip() else []

        if op == "XBEGIN":
            self.require_txn(txn_ok, op, lineno)
            state.instrs.append(TxBegin())
            return
        if op == "XEND":
            self.require_txn(txn_ok, op, lineno)
            state.instrs.append(TxEnd())
            return
        if op == "XABORT":
            self.require_txn(txn_ok, op, lineno)
            reg = None
            if args and self.is_register(args[0]):
                value = state.env.get(args[0])
                if value is None or value[0] != "prog":
                    raise FrontendError(
                        f"XABORT condition register {args[0]} does not "
                        f"hold a loaded value",
                        lineno,
                    )
                reg = value[1]
            state.instrs.append(TxAbort(reg))
            return
        if upper == "MFENCE":
            state.instrs.append(Fence(Label.MFENCE))
            return
        if op in ("XCHG", "CMPXCHG", "XADD"):
            raise FrontendError(
                f"{op} stores a register value, which the neutral IR "
                f"cannot express; encode the RMW as LOCK MOV "
                f"load/store halves instead",
                lineno,
            )
        if op == "MOV":
            if len(args) != 2:
                raise FrontendError(f"malformed MOV: {text!r}", lineno)
            dst, src = args
            if m := _ADDR.match(dst):
                loc, _ = self.location_of(state, m.group(1), lineno)
                if imm := re.fullmatch(r"\$(-?\d+)", src):
                    state.instrs.append(
                        Store(loc, int(imm.group(1)), excl=excl)
                    )
                    return
                if self.is_register(src):
                    value, data_dep = self.fold_store_value(
                        state, src, lineno
                    )
                    state.instrs.append(
                        Store(loc, value, data_dep=data_dep, excl=excl)
                    )
                    return
                raise FrontendError(f"bad store source {src!r}", lineno)
            if not self.is_register(dst):
                raise FrontendError(f"bad MOV destination {dst!r}", lineno)
            if m := _ADDR.match(src):
                loc, _ = self.location_of(state, m.group(1), lineno)
                neutral = self.neutral_of_reg(dst)
                state.instrs.append(Load(neutral, loc, excl=excl))
                state.env[dst] = ("prog", neutral)
                return
            if imm := re.fullmatch(r"\$(-?\d+)", src):
                state.env[dst] = ("const", int(imm.group(1)))
                return
            raise FrontendError(f"bad MOV source {src!r}", lineno)
        raise FrontendError(f"unknown x86 instruction {text!r}", lineno)

    # ------------------------------------------------------------------

    def render_thread(self, tid: int, thread, scratch_base: int) -> list[str]:
        lines: list[str] = []
        txn = 0
        for instr in thread:
            if isinstance(instr, TxBegin):
                if instr.atomic:
                    raise ValueError(
                        "C++ atomic{} transactions have no x86 rendering"
                    )
                # The fail-handler label is defined after the matching
                # XEND (transactions are non-nested by validation).
                lines.append(f"XBEGIN LF{tid}{txn}")
            elif isinstance(instr, TxEnd):
                lines.append("XEND")
                lines.append(f"LF{tid}{txn}:")
                txn += 1
            elif isinstance(instr, TxAbort):
                if instr.reg is None:
                    lines.append("XABORT $0")
                else:
                    lines.append(f"XABORT {self.reg_of_neutral(instr.reg)}")
            elif isinstance(instr, Fence):
                if instr.kind != Label.MFENCE:
                    raise ValueError(
                        f"no x86 rendering for fence {instr.kind!r}"
                    )
                lines.append("MFENCE")
            elif isinstance(instr, Load):
                if instr.labels or instr.addr_dep:
                    raise ValueError(
                        f"no x86 rendering for load {instr!r}"
                    )
                prefix = "LOCK " if instr.excl else ""
                lines.append(
                    f"{prefix}MOV {self.reg_of_neutral(instr.dst)},"
                    f"[{instr.loc}]"
                )
            elif isinstance(instr, Store):
                if instr.labels or instr.addr_dep or instr.data_dep:
                    raise ValueError(
                        f"no x86 rendering for store {instr!r}"
                    )
                prefix = "LOCK " if instr.excl else ""
                lines.append(f"{prefix}MOV [{instr.loc}],${instr.value}")
            else:
                raise ValueError(f"cannot render {instr!r} as x86")
        return lines
