"""herd7-compatible litmus frontend: four dialects onto one IR.

This package parses herd7-style ``.litmus`` files — the format of the
diy/litmus7 suites accompanying the paper — and lowers each dialect's
mnemonics, addressing registers, and ``exists``/``forall``/``~exists``
postconditions onto the neutral :class:`~repro.litmus.test.LitmusTest`
IR.  Every dialect also renders back out (:func:`dumps`) in parse-stable
idioms, so shrunk reproducers and reports can be written in the syntax
the test arrived in, and ``loads(dumps(t)) == t`` holds for every
representable test.

=============  =========================  =============================
header tag     architecture               TM mnemonics (pragma-gated)
=============  =========================  =============================
``X86``        :mod:`.x86`                ``XBEGIN/XEND/XABORT``
``AArch64``    :mod:`.aarch64`            ``TSTART/TCOMMIT/TABORT``
``PPC``        :mod:`.ppc`                ``tbegin./tend./tabort.``
``RISCV``      :mod:`.riscv`              ``tx.begin/tx.end/tx.abort``
=============  =========================  =============================

Transactional mnemonics require the ``(* repro: txn *)`` pragma
(:data:`~repro.litmus.frontend.common.TXN_PRAGMA`); the renderers emit
it whenever a program transacts.

:func:`load_any` auto-detects the neutral format (``litmus "name"
arch`` header) versus the dialect frontends (``<ARCH> <name>``
header); :func:`load_litmus_file` adds path-prefixed diagnostics on
top, which is what ``repro run`` / ``repro campaign`` use.
"""

from __future__ import annotations

import re

from ..parse import ParseError
from ..parse import loads as neutral_loads
from ..test import LitmusTest
from .aarch64 import AArch64Dialect
from .common import TXN_PRAGMA, Dialect, FrontendError, split_sections
from .ppc import PpcDialect
from .riscv import RiscvDialect
from .x86 import X86Dialect

__all__ = [
    "DIALECTS",
    "FrontendError",
    "TXN_PRAGMA",
    "detect_dialect",
    "dialect_for",
    "dump_dialect",
    "dumps",
    "load_dialect",
    "loads",
    "load_any",
    "load_litmus_file",
]

#: Dialect singletons, keyed by neutral architecture tag.
DIALECTS: dict[str, Dialect] = {
    d.arch: d
    for d in (X86Dialect(), AArch64Dialect(), PpcDialect(), RiscvDialect())
}

_TAG_TO_ARCH = {
    tag.lower(): dialect.arch
    for dialect in DIALECTS.values()
    for tag in dialect.tags
}

_NEUTRAL_HEADER = re.compile(r'^\s*litmus\s+"')


def dialect_for(arch: str) -> Dialect:
    """The dialect serving one neutral architecture tag."""
    try:
        return DIALECTS[arch]
    except KeyError:
        raise ValueError(
            f"no litmus dialect for architecture {arch!r}; "
            f"dialects: {', '.join(sorted(DIALECTS))}"
        ) from None


def detect_dialect(text: str) -> str | None:
    """The neutral arch tag of ``text``'s dialect header, or None.

    Detection reads the first word of the first non-comment,
    non-blank line — ``X86``/``AArch64``/``PPC``/``RISCV`` (and their
    aliases) name a dialect; anything else (e.g. the neutral format's
    ``litmus`` keyword) does not.
    """
    stripped = re.sub(r"\(\*.*?\*\)", " ", text, flags=re.DOTALL)
    for line in stripped.splitlines():
        if line.strip():
            return _TAG_TO_ARCH.get(line.split()[0].lower())
    return None


def loads(text: str) -> LitmusTest:
    """Parse a dialect ``.litmus`` file into the neutral IR."""
    sections = split_sections(text)
    arch = _TAG_TO_ARCH.get(sections.arch_tag.lower())
    if arch is None:
        raise FrontendError(
            f"unknown architecture tag {sections.arch_tag!r}; "
            f"known: {', '.join(sorted(t for d in DIALECTS.values() for t in d.tags))}",
            sections.lineno,
        )
    return DIALECTS[arch].parse(sections)


def dumps(test: LitmusTest) -> str:
    """Serialise ``test`` in its architecture's dialect syntax.

    The output parses back equal: ``loads(dumps(t)) == t``.
    """
    return dialect_for(test.arch).dump(test)


def _first_content_line(text: str) -> str:
    """The first line that is not blank or a neutral-format ``#`` comment."""
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            return stripped
    return ""


def load_any(text: str) -> LitmusTest:
    """Parse litmus text in either the neutral or a dialect format."""
    first = _first_content_line(text)
    if _NEUTRAL_HEADER.match(first) or first.startswith("litmus"):
        return neutral_loads(text)
    if detect_dialect(text) is not None:
        return loads(text)
    raise FrontendError(
        "unrecognised litmus format: expected a neutral 'litmus \"name\" "
        "arch' header or a dialect 'X86|AArch64|PPC|RISCV <name>' header",
        1,
    )


#: Collision-free aliases for package-level re-export (the neutral
#: format owns the bare ``loads``/``dumps`` names in ``repro.litmus``).
def load_dialect(text: str) -> LitmusTest:
    """Alias of :func:`loads` under a neutral-format-safe name."""
    return loads(text)


def dump_dialect(test: LitmusTest) -> str:
    """Alias of :func:`dumps` under a neutral-format-safe name."""
    return dumps(test)


def load_litmus_file(path: str) -> LitmusTest:
    """Load a ``.litmus`` file, auto-detecting its format.

    Parse failures re-raise as :class:`FrontendError` with the path
    prefixed, so CLI consumers print ``file:line: message`` diagnostics.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        return load_any(text)
    except ParseError as exc:
        lineno = getattr(exc, "lineno", None)
        message = getattr(exc, "message", str(exc))
        where = f"{path}:{lineno}" if lineno is not None else path
        raise FrontendError(f"{where}: {message}") from exc
