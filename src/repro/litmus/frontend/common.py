"""Shared machinery of the herd7-style litmus frontend.

A herd7 ``.litmus`` file has a fixed shape (arch header, optional doc
strings and ``(* ... *)`` comments, a ``{ ... }`` init section, a table
of ``|``-separated per-thread columns terminated by ``;``, and a final
``exists``/``~exists``/``forall`` condition).  :func:`split_sections`
parses that shape once; each architecture dialect then only supplies an
instruction-cell parser and renderer (:class:`Dialect`).

The dialects parse assembly *symbolically*: constant-register moves
(``MOV W10,#1`` / ``li r10,1``), the ``eor/xor`` zero idiom that litmus
tools use to materialise data/address dependencies, and init-section
register↦location bindings (``0:X1=x``) are folded into the neutral
:mod:`repro.litmus.program` instructions instead of becoming events.
The matching renderers emit exactly those idioms, so every dialect
round-trips: ``loads(dumps(test)) == test``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..parse import ParseError
from ..program import (
    CtrlBranch,
    Fence,
    Instruction,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from ..test import Atom, CoSeq, LitmusTest, MemEq, RegEq, TxnOk

__all__ = [
    "FrontendError",
    "Dialect",
    "Sections",
    "ThreadState",
    "split_sections",
    "TXN_PRAGMA",
]

#: The transaction-extension pragma: TM mnemonics (``XBEGIN``,
#: ``TSTART``, ``tbegin.``, ``tx.begin``, …) are only legal in files
#: carrying this comment, mirroring how the paper's mnemonics extend
#: each base ISA.  The renderers emit it whenever a program transacts.
TXN_PRAGMA = "(* repro: txn *)"


class FrontendError(ParseError):
    """A source-located diagnostic for malformed dialect litmus text."""

    def __init__(self, message: str, lineno: int | None = None) -> None:
        self.lineno = lineno
        self.message = message
        where = f"line {lineno}: " if lineno is not None else ""
        super().__init__(f"{where}{message}")


# ----------------------------------------------------------------------
# File shape
# ----------------------------------------------------------------------


@dataclass
class Sections:
    """The raw sections of one dialect litmus file."""

    arch_tag: str
    name: str
    lineno: int  # of the header
    pragmas: frozenset[str]
    init: list[tuple[int, str]]  # (lineno, "lhs=rhs") statements
    rows: list[tuple[int, list[str]]]  # (lineno, per-thread cells)
    n_threads: int
    quantifier: str
    condition: str
    condition_lineno: int


_COMMENT = re.compile(r"\(\*.*?\*\)", re.DOTALL)
_PRAGMA = re.compile(r"\(\*\s*repro:\s*([\w,\s-]+?)\s*\*\)")
_HEADER = re.compile(r"^(\S+)\s+(\S+)\s*$")
_QUANT = re.compile(r"^(~\s*exists|exists|forall)\b(.*)$", re.DOTALL)


def _strip_comments(text: str) -> tuple[str, frozenset[str]]:
    """Blank out ``(* ... *)`` comments (preserving line numbers) and
    collect ``(* repro: ... *)`` pragma words."""
    pragmas: set[str] = set()
    for m in _PRAGMA.finditer(text):
        pragmas.update(w.strip() for w in m.group(1).split(","))

    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    return _COMMENT.sub(blank, text), frozenset(p for p in pragmas if p)


def split_sections(text: str) -> Sections:
    """Parse the dialect-independent shape of a herd-style file."""
    text, pragmas = _strip_comments(text)
    lines = text.splitlines()

    arch_tag = name = None
    lineno = 0
    init: list[tuple[int, str]] = []
    rows: list[tuple[int, list[str]]] = []
    quantifier = None
    condition_parts: list[str] = []
    condition_lineno = 0
    state = "header"
    header_lineno = 0
    column_header = 0

    i = 0
    while i < len(lines):
        n, raw = i + 1, lines[i]
        i += 1
        line = raw.strip()
        if not line:
            continue
        if state == "header":
            m = _HEADER.match(line)
            if not m:
                raise FrontendError(
                    f"expected '<ARCH> <name>' header, got {line!r}", n
                )
            arch_tag, name, header_lineno = m.group(1), m.group(2), n
            state = "preamble"
            continue
        if quantifier is not None:
            # Herd conditions may wrap; everything after the quantifier
            # keyword belongs to the condition.
            condition_parts.append(line)
            continue
        if state == "preamble":
            if line.startswith('"') and line.endswith('"'):
                continue  # the generator's cycle doc-string
            if line.startswith("{"):
                # Init block: consume up to the matching '}'.
                body = line[1:]
                start = n
                while "}" not in body:
                    if i >= len(lines):
                        raise FrontendError("unterminated init section", start)
                    body += "\n" + lines[i]
                    i += 1
                body, _, trailer = body.partition("}")
                if trailer.strip():
                    raise FrontendError(
                        f"unexpected text after init section: {trailer.strip()!r}",
                        start,
                    )
                offset = 0
                for stmt_line in body.split("\n"):
                    for stmt in stmt_line.split(";"):
                        if stmt.strip():
                            init.append((start + offset, stmt.strip()))
                    offset += 1
                state = "body"
                continue
            state = "body"  # no init section: fall through to the body
        if state == "body":
            if m := _QUANT.match(line):
                quantifier = m.group(1).replace(" ", "")
                condition_lineno = n
                rest = m.group(2).strip()
                if rest:
                    condition_parts.append(rest)
                continue
            if line.startswith("locations"):
                continue  # herd output directive; verdicts don't use it
            cells = [c.strip() for c in line.rstrip(";").split("|")]
            if not any(cells):
                continue  # a row of empty cells carries nothing
            if all(re.fullmatch(r"P\d+", c) for c in cells if c):
                # The 'P0 | P1' column header row: it carries the
                # thread count even when every thread body is empty.
                column_header = max(column_header, len(cells))
                continue
            rows.append((n, cells))
            continue

    if arch_tag is None:
        raise FrontendError("empty litmus file: missing arch header", 1)
    if not rows and not column_header:
        raise FrontendError("litmus file has no instruction rows", header_lineno)
    if quantifier is None:
        raise FrontendError(
            "missing exists/~exists/forall condition", len(lines)
        )
    n_threads = max(
        [column_header] + [len(cells) for _, cells in rows]
    )
    for n, cells in rows:
        while len(cells) < n_threads:
            cells.append("")
    return Sections(
        arch_tag=arch_tag,
        name=name,
        lineno=header_lineno,
        pragmas=pragmas,
        init=init,
        rows=rows,
        n_threads=n_threads,
        quantifier=quantifier,
        condition=" ".join(condition_parts),
        condition_lineno=condition_lineno,
    )


# ----------------------------------------------------------------------
# Symbolic per-thread state
# ----------------------------------------------------------------------

# Register values tracked while folding assembly into neutral
# instructions.  A value is one of:
#   ("const", v)          -- a known constant (MOV #v / li)
#   ("prog", "rN")        -- the run-time value of a load destination
#   ("mix", deps, v)      -- eor-zero idiom: constant v, dependency regs
#   ("loc", "x")          -- the address of location x (init binding)
#   ("locmix", "x", deps) -- address of x mixed with dependency regs
#   ("status",)           -- an exclusive-store/TSTART status flag
#                            (branches on it are retry/fail plumbing,
#                            not control dependencies)


@dataclass
class ThreadState:
    """Folding state for one thread column."""

    tid: int
    instrs: list[Instruction] = field(default_factory=list)
    env: dict[str, tuple] = field(default_factory=dict)
    pending_cmp: str | None = None  # PPC cmpwi awaiting its branch
    #: Set after ``tbegin.``: the immediately following conditional
    #: branch is the transaction's fail handler, not a dependency.
    absorb_branch: bool = False

    def deps_of(self, value: tuple) -> tuple[str, ...]:
        if value[0] == "prog":
            return (value[1],)
        if value[0] == "mix":
            return value[1]
        return ()


class Dialect:
    """One architecture's surface syntax: cell parser + renderer."""

    #: Neutral architecture tag (model registry name).
    arch = ""
    #: Header tags this dialect answers to (first one is emitted).
    tags: tuple[str, ...] = ()
    #: TM mnemonic table used in diagnostics.
    txn_mnemonics = ""

    # -- registers ------------------------------------------------------

    def reg_of_neutral(self, neutral: str) -> str:
        """Dialect register name for the neutral register ``rN``."""
        raise NotImplementedError

    def neutral_of_reg(self, name: str) -> str | None:
        """Neutral ``rN`` for a dialect register name, or None."""
        raise NotImplementedError

    # -- per-cell parse / render ---------------------------------------

    def parse_cell(
        self, state: ThreadState, text: str, lineno: int, txn_ok: bool
    ) -> None:
        """Fold one instruction cell into ``state``."""
        raise NotImplementedError

    def render_thread(self, tid: int, thread, scratch_base: int) -> list[str]:
        """Render one neutral thread as dialect assembly lines."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------

    def require_txn(self, txn_ok: bool, op: str, lineno: int) -> None:
        if not txn_ok:
            raise FrontendError(
                f"transactional mnemonic {op!r} requires the "
                f"transaction-extension pragma {TXN_PRAGMA!r}",
                lineno,
            )

    def fold_store_value(
        self, state: ThreadState, reg: str, lineno: int
    ) -> tuple[int, tuple[str, ...]]:
        """(constant value, data deps) a store of ``reg`` writes."""
        value = state.env.get(reg)
        if value is None:
            raise FrontendError(f"store of undefined register {reg}", lineno)
        if value[0] == "const":
            return value[1], ()
        if value[0] == "mix":
            return value[2], value[1]
        raise FrontendError(
            f"store of run-time value in {reg}; use the xor/eor zero "
            f"idiom to express a data dependency",
            lineno,
        )

    def operand_deps(
        self, state: ThreadState, reg: str, lineno: int
    ) -> tuple[str, ...]:
        """Dependency registers an ALU operand contributes."""
        value = state.env.get(reg)
        if value is None:
            raise FrontendError(f"use of undefined register {reg}", lineno)
        return state.deps_of(value)

    def fold_mix(
        self, state: ThreadState, a: str, b: str, lineno: int
    ) -> tuple:
        """The xor/eor-zero idiom: ``xor d,a,b`` as a dependency mix."""
        deps = self.operand_deps(state, a, lineno)
        if b != a:
            deps = deps + self.operand_deps(state, b, lineno)
        return ("mix", deps, 0)

    def fold_imm_add(
        self, state: ThreadState, reg: str, imm: int, lineno: int
    ) -> None:
        """``add reg,reg,#imm`` over a folded constant or mix value."""
        value = state.env.get(reg)
        if value is None or value[0] not in ("mix", "const"):
            raise FrontendError(
                f"immediate add on register {reg} holding no foldable "
                f"value",
                lineno,
            )
        if value[0] == "const":
            state.env[reg] = ("const", value[1] + imm)
        else:
            state.env[reg] = ("mix", value[1], value[2] + imm)

    def fold_branch(
        self, state: ThreadState, reg: str, lineno: int
    ) -> None:
        """Append the CtrlBranch a conditional branch on ``reg`` means."""
        value = state.env.get(reg)
        deps = state.deps_of(value) if value else ()
        if not deps:
            raise FrontendError(
                f"branch on {reg}, which holds no loaded value", lineno
            )
        state.instrs.append(CtrlBranch(deps))

    def location_of(
        self, state: ThreadState, token: str, lineno: int
    ) -> tuple[str, tuple[str, ...]]:
        """Resolve an address token to (location, addr deps).

        ``token`` is either a location symbol or a register holding one
        (bound in the init section, possibly mixed with dependency
        registers via the xor idiom).
        """
        value = state.env.get(token)
        if value is not None:
            if value[0] == "loc":
                return value[1], ()
            if value[0] == "locmix":
                return value[1], value[2]
        if self.is_register(token):
            raise FrontendError(
                f"address register {token} is not bound to a location "
                f"(bind it in the init section: '{state.tid}:{token}=x;')",
                lineno,
            )
        return token, ()

    def is_register(self, token: str) -> bool:
        return self.neutral_of_reg(token) is not None

    # -- whole-file parse ----------------------------------------------

    def parse(self, sections: Sections) -> LitmusTest:
        txn_ok = "txn" in sections.pragmas
        states = [ThreadState(tid) for tid in range(sections.n_threads)]

        init_mem: dict[str, int] = {}
        for lineno, stmt in sections.init:
            self._parse_init(stmt, lineno, states, init_mem)

        for lineno, cells in sections.rows:
            for tid, cell in enumerate(cells):
                cell = cell.strip()
                if not cell or cell.endswith(":"):
                    continue  # empty slot or a branch-target label
                self.parse_cell(states[tid], cell, lineno, txn_ok)

        for state in states:
            if state.pending_cmp is not None:
                raise FrontendError(
                    f"thread {state.tid}: compare without a branch",
                    sections.rows[-1][0] if sections.rows else sections.lineno,
                )

        try:
            program = Program(tuple(tuple(s.instrs) for s in states))
        except ValueError as exc:
            raise FrontendError(str(exc), sections.lineno) from exc
        atoms = self.parse_condition(
            sections.condition, sections.condition_lineno
        )
        return LitmusTest(
            name=sections.name,
            arch=self.arch,
            program=program,
            postcondition=atoms,
            init=init_mem,
            quantifier=sections.quantifier,
        )

    def _parse_init(
        self,
        stmt: str,
        lineno: int,
        states: list[ThreadState],
        init_mem: dict[str, int],
    ) -> None:
        lhs, eq, rhs = stmt.partition("=")
        if not eq:
            return  # a bare declaration ('int x;') initialises to zero
        lhs, rhs = lhs.strip(), rhs.strip()
        # Drop C-style type prefixes herd allows ('int x = 0').
        lhs = lhs.split()[-1]
        m = re.fullmatch(r"(\d+)\s*:\s*(\S+)", lhs)
        if m:
            tid, reg = int(m.group(1)), m.group(2)
            if tid >= len(states):
                raise FrontendError(
                    f"init binds register of unknown thread {tid}", lineno
                )
            if not self.is_register(reg):
                raise FrontendError(
                    f"init binds unknown register {reg!r}", lineno
                )
            if re.fullmatch(r"-?\d+", rhs):
                states[tid].env[reg] = ("const", int(rhs))
            else:
                states[tid].env[reg] = ("loc", rhs.strip("&"))
            return
        loc = lhs.strip("[]")
        if not re.fullmatch(r"-?\d+", rhs):
            raise FrontendError(
                f"unsupported init statement {stmt!r}", lineno
            )
        value = int(rhs)
        if value != 0:
            raise FrontendError(
                f"non-zero initial value {loc}={value} is not supported "
                f"(the checking semantics starts memory at zero)",
                lineno,
            )
        init_mem[loc] = 0

    # -- condition ------------------------------------------------------

    def parse_condition(self, text: str, lineno: int) -> tuple[Atom, ...]:
        text = text.strip()
        if text.startswith("(") and text.endswith(")"):
            text = text[1:-1].strip()
        if text in ("", "true"):
            return ()
        if "\\/" in text:
            raise FrontendError(
                "disjunctive conditions (\\/) are not supported", lineno
            )
        atoms = []
        for part in text.split("/\\"):
            atoms.append(self._parse_atom(part.strip(), lineno))
        return tuple(atoms)

    _TXN_ATOM = re.compile(r"^txn\s*\(\s*(\d+)\s*,\s*(\d+)\s*\)\s*=\s*(ok|aborted)$")
    _CO_ATOM = re.compile(r"^co\s*\(\s*(\w+)\s*\)\s*=\s*((?:-?\d+)(?:\s*,\s*-?\d+)*)$")
    _REG_ATOM = re.compile(r"^(\d+)\s*:\s*(\S+)\s*=\s*(-?\d+)$")
    _MEM_ATOM = re.compile(r"^\[?(\w+)\]?\s*=\s*(-?\d+)$")

    def _parse_atom(self, text: str, lineno: int) -> Atom:
        if m := self._TXN_ATOM.match(text):
            return TxnOk(int(m.group(1)), int(m.group(2)), m.group(3) == "ok")
        if m := self._CO_ATOM.match(text):
            values = tuple(int(v) for v in re.split(r"\s*,\s*", m.group(2)))
            return CoSeq(m.group(1), values)
        if m := self._REG_ATOM.match(text):
            neutral = self.neutral_of_reg(m.group(2))
            if neutral is None:
                raise FrontendError(
                    f"unknown {self.arch} register {m.group(2)!r} in "
                    f"condition atom {text!r}",
                    lineno,
                )
            return RegEq(int(m.group(1)), neutral, int(m.group(3)))
        if m := self._MEM_ATOM.match(text):
            return MemEq(m.group(1), int(m.group(2)))
        raise FrontendError(f"bad condition atom {text!r}", lineno)

    # -- whole-file render ---------------------------------------------

    def dump(self, test: LitmusTest) -> str:
        """Serialise ``test`` in this dialect; parses back equal."""
        program = test.program
        scratch_base = _scratch_base(test)
        columns = [
            self.render_thread(tid, thread, scratch_base)
            for tid, thread in enumerate(program.threads)
        ]
        lines = [f"{self.tags[0]} {test.name}"]
        if any(
            isinstance(i, (TxBegin, TxEnd, TxAbort))
            for thread in program.threads
            for i in thread
        ):
            lines.append(TXN_PRAGMA)
        locs = program.locations()
        if locs:
            lines.append(
                "{ " + " ".join(f"{loc}=0;" for loc in locs) + " }"
            )
        lines.append(_format_columns(columns))
        lines.append(
            f"{test.quantifier} ({self._dump_condition(test)})"
        )
        return "\n".join(lines) + "\n"

    def _dump_condition(self, test: LitmusTest) -> str:
        if not test.postcondition:
            return "true"
        parts = []
        for atom in test.postcondition:
            if isinstance(atom, RegEq):
                parts.append(
                    f"{atom.tid}:{self.reg_of_neutral(atom.reg)}={atom.value}"
                )
            elif isinstance(atom, MemEq):
                parts.append(f"{atom.loc}={atom.value}")
            elif isinstance(atom, TxnOk):
                state = "ok" if atom.ok else "aborted"
                parts.append(f"txn({atom.tid},{atom.index})={state}")
            elif isinstance(atom, CoSeq):
                chain = ",".join(str(v) for v in atom.values)
                parts.append(f"co({atom.loc})={chain}")
            else:
                raise ValueError(f"cannot render atom {atom!r}")
        return " /\\ ".join(parts)


def _scratch_base(test: LitmusTest) -> int:
    """First neutral register index free for renderer scratch use.

    Scratch registers (store-value holders, xor-zero mixers, exclusive
    status flags) fold away on parse, but they must not collide with
    program registers, including ones the condition names without a
    defining load.
    """
    used = [-1]
    for thread in test.program.threads:
        for instr in thread:
            if isinstance(instr, Load):
                used.append(_reg_index(instr.dst))
                used.extend(_reg_index(r) for r in instr.addr_dep)
            elif isinstance(instr, Store):
                used.extend(_reg_index(r) for r in instr.data_dep)
                used.extend(_reg_index(r) for r in instr.addr_dep)
            elif isinstance(instr, CtrlBranch):
                used.extend(_reg_index(r) for r in instr.regs)
            elif isinstance(instr, TxAbort) and instr.reg:
                used.append(_reg_index(instr.reg))
    for atom in test.postcondition:
        if isinstance(atom, RegEq):
            used.append(_reg_index(atom.reg))
    return max(used) + 1


def _reg_index(neutral: str) -> int:
    m = re.fullmatch(r"r(\d+)", neutral)
    if not m:
        raise ValueError(f"cannot render non-canonical register {neutral!r}")
    return int(m.group(1))


def _format_columns(columns: list[list[str]]) -> str:
    width = max((len(line) for col in columns for line in col), default=2)
    width = max(width, 2)
    height = max((len(col) for col in columns), default=0)
    header = (
        " "
        + " | ".join(f"P{i}".ljust(width) for i in range(len(columns)))
        + " ;"
    )
    rows = [header]
    for i in range(height):
        cells = [
            (col[i] if i < len(col) else "").ljust(width) for col in columns
        ]
        rows.append(" " + " | ".join(cells) + " ;")
    return "\n".join(rows)
