"""AArch64 litmus dialect: ``LDR``/``STR``/``DMB``, TME ``TSTART``.

Parses the herd7 AArch64 surface syntax (including init-section
register↦location bindings, the ``MOV #imm`` store-value idiom, and the
``EOR``-zero dependency idiom) onto the neutral program IR, and renders
neutral programs back out in the same idioms so files round-trip.

Transactions use the TME-flavoured mnemonics ``TSTART``/``TCOMMIT``/
``TABORT`` (Example 1.1's "unofficial but representative" encoding;
``TXBEGIN``/``TXEND``/``TXABORT`` are accepted as aliases), gated on
the ``(* repro: txn *)`` pragma.
"""

from __future__ import annotations

import re

from ...core.events import Label
from ..program import CtrlBranch, Fence, Load, Store, TxAbort, TxBegin, TxEnd
from .common import Dialect, FrontendError, ThreadState

__all__ = ["AArch64Dialect"]

_FENCES = {
    "DMB SY": Label.DMB,
    "DMB": Label.DMB,
    "DMB LD": Label.DMB_LD,
    "DMB ST": Label.DMB_ST,
    "ISB": Label.ISB,
}
_FENCE_OUT = {
    Label.DMB: "DMB SY",
    Label.DMB_LD: "DMB LD",
    Label.DMB_ST: "DMB ST",
    Label.ISB: "ISB",
}
_LOAD_OPS = {
    "LDR": (False, False),
    "LDAR": (True, False),
    "LDXR": (False, True),
    "LDAXR": (True, True),
}
_STORE_OPS = {"STR": False, "STLR": True}
_STORE_EXCL_OPS = {"STXR": False, "STLXR": True}

_REG = re.compile(r"^[WX](\d+)$")
_ADDR = re.compile(r"^\[([^\],]+)(?:,([^\],]+?))?(?:,SXTW)?\]$")


def _split_args(rest: str) -> list[str]:
    """Split operands on commas, keeping ``[base,offset]`` intact."""
    args: list[str] = []
    depth = 0
    current = ""
    for ch in rest:
        if ch == "," and depth == 0:
            args.append(current.strip())
            current = ""
            continue
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        current += ch
    if current.strip():
        args.append(current.strip())
    return args


class AArch64Dialect(Dialect):
    arch = "armv8"
    tags = ("AArch64", "ARM", "ARMv8")
    txn_mnemonics = "TSTART/TCOMMIT/TABORT"

    def reg_of_neutral(self, neutral: str) -> str:
        return "W" + neutral[1:]

    def neutral_of_reg(self, name: str) -> str | None:
        m = _REG.match(name)
        return f"r{int(m.group(1))}" if m else None

    # ------------------------------------------------------------------

    def parse_cell(
        self, state: ThreadState, text: str, lineno: int, txn_ok: bool
    ) -> None:
        op, _, rest = text.partition(" ")
        op = op.upper()
        args = _split_args(rest)

        if op in ("TSTART", "TXBEGIN"):
            self.require_txn(txn_ok, op, lineno)
            # An operand is the status register (TME) or a fail label.
            if args and self.is_register(args[0]):
                state.env[args[0]] = ("status",)
            state.instrs.append(TxBegin())
            return
        if op in ("TCOMMIT", "TXEND"):
            self.require_txn(txn_ok, op, lineno)
            state.instrs.append(TxEnd())
            return
        if op in ("TABORT", "TXABORT", "TCANCEL"):
            self.require_txn(txn_ok, op, lineno)
            reg = None
            if args and self.is_register(args[0]):
                value = state.env.get(args[0])
                if value is None or value[0] != "prog":
                    raise FrontendError(
                        f"{op} condition register {args[0]} does not hold "
                        f"a loaded value",
                        lineno,
                    )
                reg = value[1]
            state.instrs.append(TxAbort(reg))
            return
        if text.upper() in _FENCES:
            state.instrs.append(Fence(_FENCES[text.upper()]))
            return
        if op == "MOV":
            self._two(args, text, lineno)
            imm = self._imm(args[1], lineno)
            state.env[args[0]] = ("const", imm)
            return
        if op in ("EOR", "ORR"):
            if len(args) != 3:
                raise FrontendError(f"malformed {op}: {text!r}", lineno)
            state.env[args[0]] = self.fold_mix(state, args[1], args[2], lineno)
            return
        if op == "ADD":
            if len(args) != 3 or args[0] != args[1]:
                raise FrontendError(
                    f"unsupported ADD form {text!r} (expected ADD Wd,Wd,#imm)",
                    lineno,
                )
            self.fold_imm_add(state, args[0], self._imm(args[2], lineno), lineno)
            return
        if op in _LOAD_OPS:
            self._two(args, text, lineno)
            acq, excl = _LOAD_OPS[op]
            loc, addr_dep = self._addr(state, args[1], lineno)
            labels = frozenset({Label.ACQ}) if acq else frozenset()
            dst = self.neutral_of_reg(args[0])
            if dst is None:
                raise FrontendError(f"bad destination {args[0]!r}", lineno)
            state.instrs.append(
                Load(dst, loc, labels=labels, addr_dep=addr_dep, excl=excl)
            )
            state.env[args[0]] = ("prog", dst)
            return
        if op in _STORE_OPS:
            self._two(args, text, lineno)
            self._store(state, args[0], args[1], _STORE_OPS[op], False, lineno)
            return
        if op in _STORE_EXCL_OPS:
            if len(args) != 3:
                raise FrontendError(f"malformed {op}: {text!r}", lineno)
            state.env[args[0]] = ("status",)
            self._store(
                state, args[1], args[2], _STORE_EXCL_OPS[op], True, lineno
            )
            return
        if op in ("CBNZ", "CBZ"):
            reg = args[0] if args else ""
            value = state.env.get(reg)
            if value is not None and value[0] == "status":
                return  # exclusive/TSTART retry plumbing
            self.fold_branch(state, reg, lineno)
            return
        raise FrontendError(f"unknown AArch64 instruction {text!r}", lineno)

    def _two(self, args, text, lineno) -> None:
        if len(args) != 2:
            raise FrontendError(f"malformed instruction {text!r}", lineno)

    def _imm(self, token: str, lineno: int) -> int:
        m = re.fullmatch(r"#(-?\d+)", token)
        if not m:
            raise FrontendError(f"expected immediate, got {token!r}", lineno)
        return int(m.group(1))

    def _addr(
        self, state: ThreadState, token: str, lineno: int
    ) -> tuple[str, tuple[str, ...]]:
        m = _ADDR.match(token)
        if not m:
            raise FrontendError(f"bad address {token!r}", lineno)
        base, offset = m.group(1).strip(), m.group(2)
        loc, deps = self.location_of(state, base, lineno)
        if offset is not None:
            deps = deps + self.operand_deps(state, offset.strip(), lineno)
        return loc, deps

    def _store(
        self, state, value_reg, addr, rel: bool, excl: bool, lineno
    ) -> None:
        value, data_dep = self.fold_store_value(state, value_reg, lineno)
        loc, addr_dep = self._addr(state, addr, lineno)
        labels = frozenset({Label.REL}) if rel else frozenset()
        state.instrs.append(
            Store(
                loc,
                value,
                labels=labels,
                data_dep=data_dep,
                addr_dep=addr_dep,
                excl=excl,
            )
        )

    # ------------------------------------------------------------------

    def render_thread(self, tid: int, thread, scratch_base: int) -> list[str]:
        lines: list[str] = []
        scratch = scratch_base
        label = 0

        def mix_into(deps: tuple[str, ...]) -> str:
            nonlocal scratch
            reg = f"W{scratch}"
            scratch += 1
            first = self.reg_of_neutral(deps[0])
            second = self.reg_of_neutral(deps[1]) if len(deps) > 1 else first
            lines.append(f"EOR {reg},{first},{second}")
            for extra in deps[2:]:
                lines.append(f"EOR {reg},{reg},{self.reg_of_neutral(extra)}")
            return reg

        def addr_of(loc: str, addr_dep: tuple[str, ...]) -> str:
            if addr_dep:
                return f"[{loc},{mix_into(addr_dep)}]"
            return f"[{loc}]"

        for instr in thread:
            if isinstance(instr, TxBegin):
                if instr.atomic:
                    raise ValueError(
                        "C++ atomic{} transactions have no AArch64 rendering"
                    )
                lines.append("TSTART")
            elif isinstance(instr, TxEnd):
                lines.append("TCOMMIT")
            elif isinstance(instr, TxAbort):
                if instr.reg is None:
                    lines.append("TABORT")
                else:
                    lines.append(f"TABORT {self.reg_of_neutral(instr.reg)}")
            elif isinstance(instr, Fence):
                try:
                    lines.append(_FENCE_OUT[instr.kind])
                except KeyError:
                    raise ValueError(
                        f"no AArch64 rendering for fence {instr.kind!r}"
                    ) from None
            elif isinstance(instr, CtrlBranch):
                if len(instr.regs) == 1:
                    reg = self.reg_of_neutral(instr.regs[0])
                else:
                    reg = f"W{scratch}"
                    scratch += 1
                    first = self.reg_of_neutral(instr.regs[0])
                    second = self.reg_of_neutral(instr.regs[1])
                    lines.append(f"ORR {reg},{first},{second}")
                    for extra in instr.regs[2:]:
                        lines.append(
                            f"ORR {reg},{reg},{self.reg_of_neutral(extra)}"
                        )
                lines.append(f"CBNZ {reg},LC{tid}{label}")
                lines.append(f"LC{tid}{label}:")
                label += 1
            elif isinstance(instr, Load):
                acq = Label.ACQ in instr.labels
                op = {v: k for k, v in _LOAD_OPS.items()}[(acq, instr.excl)]
                lines.append(
                    f"{op} {self.reg_of_neutral(instr.dst)},"
                    f"{addr_of(instr.loc, instr.addr_dep)}"
                )
            elif isinstance(instr, Store):
                rel = Label.REL in instr.labels
                if instr.data_dep:
                    value_reg = mix_into(instr.data_dep)
                    lines.append(f"ADD {value_reg},{value_reg},#{instr.value}")
                else:
                    value_reg = f"W{scratch}"
                    scratch += 1
                    lines.append(f"MOV {value_reg},#{instr.value}")
                addr = addr_of(instr.loc, instr.addr_dep)
                if instr.excl:
                    status = f"W{scratch}"
                    scratch += 1
                    op = "STLXR" if rel else "STXR"
                    lines.append(f"{op} {status},{value_reg},{addr}")
                else:
                    op = "STLR" if rel else "STR"
                    lines.append(f"{op} {value_reg},{addr}")
            else:
                raise ValueError(f"cannot render {instr!r} as AArch64")
        return lines
