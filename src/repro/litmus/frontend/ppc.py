"""Power litmus dialect: ``lwz``/``stw``/``sync``, HTM ``tbegin.``.

Parses the herd7 PPC surface syntax — ``li`` store values, the
``xor``-zero dependency idiom, ``OFF(reg)`` addressing with
init-section register↦location bindings — onto the neutral IR.

Neutral register ``rN`` maps to PPC ``r{N+1}`` (``r0`` reads as zero in
D-form addressing, so litmus tools avoid it).  Transactions use the
Power HTM mnemonics ``tbegin.``/``tend.``/``tabort.``; a ``beq``
immediately after ``tbegin.`` is absorbed as the fail handler (Fig. 2's
idiom), and ``tabort. rK`` with a loaded register is the conditional
self-abort extension.  All TM mnemonics require the
``(* repro: txn *)`` pragma.
"""

from __future__ import annotations

import re

from ...core.events import Label
from ..program import CtrlBranch, Fence, Load, Store, TxAbort, TxBegin, TxEnd
from .common import Dialect, FrontendError, ThreadState

__all__ = ["PpcDialect"]

_FENCES = {
    "sync": Label.SYNC,
    "lwsync": Label.LWSYNC,
    "isync": Label.ISYNC,
}
_FENCE_OUT = {v: k for k, v in _FENCES.items()}
_REG = re.compile(r"^r(\d+)$")
_ADDR = re.compile(r"^(\w+)\((\w+)\)$")


class PpcDialect(Dialect):
    arch = "power"
    tags = ("PPC", "POWER")
    txn_mnemonics = "tbegin./tend./tabort."

    def reg_of_neutral(self, neutral: str) -> str:
        return f"r{int(neutral[1:]) + 1}"

    def neutral_of_reg(self, name: str) -> str | None:
        m = _REG.match(name)
        if not m or int(m.group(1)) == 0:
            return None
        return f"r{int(m.group(1)) - 1}"

    # ------------------------------------------------------------------

    def parse_cell(
        self, state: ThreadState, text: str, lineno: int, txn_ok: bool
    ) -> None:
        op, _, rest = text.partition(" ")
        args = [a.strip() for a in rest.split(",")] if rest.strip() else []

        # The absorb flag only covers a branch *immediately* after
        # tbegin./stwcx.; any other instruction in between clears it.
        absorb = state.absorb_branch
        state.absorb_branch = False

        if op == "tbegin.":
            self.require_txn(txn_ok, op, lineno)
            state.instrs.append(TxBegin())
            state.absorb_branch = True
            return
        if op == "tend.":
            self.require_txn(txn_ok, op, lineno)
            state.instrs.append(TxEnd())
            return
        if op == "tabort.":
            self.require_txn(txn_ok, op, lineno)
            reg = None
            if args and self.is_register(args[0]):
                value = state.env.get(args[0])
                if value is None or value[0] != "prog":
                    raise FrontendError(
                        f"tabort. condition register {args[0]} does not "
                        f"hold a loaded value",
                        lineno,
                    )
                reg = value[1]
            state.instrs.append(TxAbort(reg))
            return
        if text in _FENCES:
            state.instrs.append(Fence(_FENCES[text]))
            return
        if op == "li":
            self._argc(args, 2, text, lineno)
            state.env[args[0]] = ("const", int(args[1]))
            return
        if op in ("xor", "or"):
            self._argc(args, 3, text, lineno)
            state.env[args[0]] = self.fold_mix(state, args[1], args[2], lineno)
            return
        if op == "addi":
            self._argc(args, 3, text, lineno)
            if args[0] != args[1]:
                raise FrontendError(
                    f"unsupported addi form {text!r} "
                    f"(expected addi rd,rd,imm)",
                    lineno,
                )
            self.fold_imm_add(state, args[0], int(args[2]), lineno)
            return
        if op in ("lwz", "lwarx"):
            self._argc(args, 2, text, lineno)
            loc, addr_dep = self._addr(state, args[1], lineno)
            neutral = self.neutral_of_reg(args[0])
            if neutral is None:
                raise FrontendError(f"bad destination {args[0]!r}", lineno)
            state.instrs.append(
                Load(neutral, loc, addr_dep=addr_dep, excl=op == "lwarx")
            )
            state.env[args[0]] = ("prog", neutral)
            return
        if op in ("stw", "stwcx."):
            self._argc(args, 2, text, lineno)
            value, data_dep = self.fold_store_value(state, args[0], lineno)
            loc, addr_dep = self._addr(state, args[1], lineno)
            state.instrs.append(
                Store(
                    loc,
                    value,
                    data_dep=data_dep,
                    addr_dep=addr_dep,
                    excl=op == "stwcx.",
                )
            )
            if op == "stwcx.":
                state.absorb_branch = True  # the bne retry loop
            return
        if op == "cmpwi":
            self._argc(args, 2, text, lineno)
            state.pending_cmp = args[0]
            return
        if op in ("bne", "beq", "bne-", "beq-"):
            if absorb:
                # tbegin. fail handler / stwcx. retry loop.
                state.pending_cmp = None
                return
            reg = state.pending_cmp
            state.pending_cmp = None
            if reg is None:
                raise FrontendError(
                    f"branch {op} without a preceding cmpwi", lineno
                )
            self.fold_branch(state, reg, lineno)
            return
        raise FrontendError(f"unknown PPC instruction {text!r}", lineno)

    def _argc(self, args, n, text, lineno) -> None:
        if len(args) != n:
            raise FrontendError(f"malformed instruction {text!r}", lineno)

    def _addr(
        self, state: ThreadState, token: str, lineno: int
    ) -> tuple[str, tuple[str, ...]]:
        m = _ADDR.match(token)
        if not m:
            raise FrontendError(f"bad address {token!r}", lineno)
        offset, base = m.group(1), m.group(2)
        loc, deps = self.location_of(state, base, lineno)
        if not re.fullmatch(r"\d+", offset):
            # Register offset: the xor-zero address-dependency idiom.
            value = state.env.get(offset)
            if value is None or value[0] != "mix":
                raise FrontendError(
                    f"address offset register {offset} holds no "
                    f"xor-zero value",
                    lineno,
                )
            deps = deps + value[1]
        elif int(offset) != 0:
            raise FrontendError(
                f"non-zero address offset {offset} is not supported", lineno
            )
        return loc, deps

    # ------------------------------------------------------------------

    def render_thread(self, tid: int, thread, scratch_base: int) -> list[str]:
        lines: list[str] = []
        scratch = scratch_base + 1  # dialect numbering is neutral + 1
        label = 0

        def mix_into(deps: tuple[str, ...]) -> str:
            nonlocal scratch
            reg = f"r{scratch}"
            scratch += 1
            first = self.reg_of_neutral(deps[0])
            second = self.reg_of_neutral(deps[1]) if len(deps) > 1 else first
            lines.append(f"xor {reg},{first},{second}")
            for extra in deps[2:]:
                lines.append(f"xor {reg},{reg},{self.reg_of_neutral(extra)}")
            return reg

        def addr_of(loc: str, addr_dep: tuple[str, ...]) -> str:
            if addr_dep:
                return f"{mix_into(addr_dep)}({loc})"
            return f"0({loc})"

        for instr in thread:
            if isinstance(instr, TxBegin):
                if instr.atomic:
                    raise ValueError(
                        "C++ atomic{} transactions have no PPC rendering"
                    )
                lines.append("tbegin.")
                lines.append(f"beq LF{tid}{label}")
                lines.append(f"LF{tid}{label}:")
                label += 1
            elif isinstance(instr, TxEnd):
                lines.append("tend.")
            elif isinstance(instr, TxAbort):
                if instr.reg is None:
                    lines.append("tabort.")
                else:
                    lines.append(f"tabort. {self.reg_of_neutral(instr.reg)}")
            elif isinstance(instr, Fence):
                try:
                    lines.append(_FENCE_OUT[instr.kind])
                except KeyError:
                    raise ValueError(
                        f"no PPC rendering for fence {instr.kind!r}"
                    ) from None
            elif isinstance(instr, CtrlBranch):
                if len(instr.regs) == 1:
                    reg = self.reg_of_neutral(instr.regs[0])
                else:
                    reg = f"r{scratch}"
                    scratch += 1
                    first = self.reg_of_neutral(instr.regs[0])
                    second = self.reg_of_neutral(instr.regs[1])
                    lines.append(f"or {reg},{first},{second}")
                    for extra in instr.regs[2:]:
                        lines.append(
                            f"or {reg},{reg},{self.reg_of_neutral(extra)}"
                        )
                lines.append(f"cmpwi {reg},0")
                lines.append(f"bne LC{tid}{label}")
                lines.append(f"LC{tid}{label}:")
                label += 1
            elif isinstance(instr, Load):
                if instr.labels:
                    raise ValueError(f"no PPC rendering for load {instr!r}")
                op = "lwarx" if instr.excl else "lwz"
                lines.append(
                    f"{op} {self.reg_of_neutral(instr.dst)},"
                    f"{addr_of(instr.loc, instr.addr_dep)}"
                )
            elif isinstance(instr, Store):
                if instr.labels:
                    raise ValueError(f"no PPC rendering for store {instr!r}")
                if instr.data_dep:
                    value_reg = mix_into(instr.data_dep)
                    lines.append(f"addi {value_reg},{value_reg},{instr.value}")
                else:
                    value_reg = f"r{scratch}"
                    scratch += 1
                    lines.append(f"li {value_reg},{instr.value}")
                op = "stwcx." if instr.excl else "stw"
                lines.append(
                    f"{op} {value_reg},{addr_of(instr.loc, instr.addr_dep)}"
                )
                if instr.excl:
                    lines.append(f"bne LR{tid}{label}")
                    lines.append(f"LR{tid}{label}:")
                    label += 1
            else:
                raise ValueError(f"cannot render {instr!r} as PPC")
        return lines
