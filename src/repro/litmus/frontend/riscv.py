"""RISC-V litmus dialect: ``lw``/``sw``/``fence``, unofficial TM.

Parses the herd7 RVWMO surface syntax (``li`` store values, the
``xor``-zero dependency idiom, ``0(reg)`` addressing with init-section
bindings) onto the neutral IR.  Neutral ``rN`` maps to ``x{N+5}``
(``x0``–``x4`` are zero/ra/sp/gp/tp).

Extensions beyond stock herd7, documented in the dialect table:

* ``lw.aq`` / ``sw.rl`` — plain acquire/release accesses.  RISC-V has
  no such instructions (RVWMO expresses them through ``lr``/``sc``/AMO
  forms only); the suffix forms keep the litmus text one-to-one with
  the neutral events, exactly as the paper's ARMv8 TM mnemonics are
  "unofficial but representative";
* ``tx.begin`` / ``tx.end`` / ``tx.abort [xK]`` — the transaction
  bracket (RISC-V has no ratified TM extension), gated on the
  ``(* repro: txn *)`` pragma.
"""

from __future__ import annotations

import re

from ...core.events import Label
from ..program import CtrlBranch, Fence, Load, Store, TxAbort, TxBegin, TxEnd
from .common import Dialect, FrontendError, ThreadState

__all__ = ["RiscvDialect"]

_FENCES = {
    "fence rw,rw": Label.FENCE_RW_RW,
    "fence r,rw": Label.FENCE_R_RW,
    "fence rw,w": Label.FENCE_RW_W,
    "fence.tso": Label.FENCE_TSO,
}
_FENCE_OUT = {v: k for k, v in _FENCES.items()}
_REG = re.compile(r"^x(\d+)$")
_ADDR = re.compile(r"^(\d+)\((\w+)\)$")


class RiscvDialect(Dialect):
    arch = "riscv"
    tags = ("RISCV", "RISC-V")
    txn_mnemonics = "tx.begin/tx.end/tx.abort"

    def reg_of_neutral(self, neutral: str) -> str:
        return f"x{int(neutral[1:]) + 5}"

    def neutral_of_reg(self, name: str) -> str | None:
        m = _REG.match(name)
        if not m or int(m.group(1)) < 5:
            return None
        return f"r{int(m.group(1)) - 5}"

    # ------------------------------------------------------------------

    def parse_cell(
        self, state: ThreadState, text: str, lineno: int, txn_ok: bool
    ) -> None:
        normalized = " ".join(text.split())
        if normalized.replace(", ", ",") in _FENCES:
            state.instrs.append(Fence(_FENCES[normalized.replace(", ", ",")]))
            return
        op, _, rest = normalized.partition(" ")
        args = [a.strip() for a in rest.split(",")] if rest.strip() else []

        if op == "tx.begin":
            self.require_txn(txn_ok, op, lineno)
            state.instrs.append(TxBegin())
            return
        if op == "tx.end":
            self.require_txn(txn_ok, op, lineno)
            state.instrs.append(TxEnd())
            return
        if op == "tx.abort":
            self.require_txn(txn_ok, op, lineno)
            reg = None
            if args and self.is_register(args[0]):
                value = state.env.get(args[0])
                if value is None or value[0] != "prog":
                    raise FrontendError(
                        f"tx.abort condition register {args[0]} does not "
                        f"hold a loaded value",
                        lineno,
                    )
                reg = value[1]
            state.instrs.append(TxAbort(reg))
            return
        if op == "li":
            self._argc(args, 2, text, lineno)
            state.env[args[0]] = ("const", int(args[1]))
            return
        if op in ("xor", "or"):
            self._argc(args, 3, text, lineno)
            state.env[args[0]] = self.fold_mix(state, args[1], args[2], lineno)
            return
        if op == "add":
            # add xs,xs,SYM folds a location into an xor-zero register:
            # the address-dependency idiom.
            self._argc(args, 3, text, lineno)
            if args[0] != args[1]:
                raise FrontendError(
                    f"unsupported add form {text!r} (expected add xd,xd,sym)",
                    lineno,
                )
            value = state.env.get(args[0])
            if value is None or value[0] != "mix":
                raise FrontendError(
                    f"add on register {args[0]} holding no xor-zero value",
                    lineno,
                )
            loc, extra = self.location_of(state, args[2], lineno)
            state.env[args[0]] = ("locmix", loc, extra + value[1])
            return
        if op == "addi":
            self._argc(args, 3, text, lineno)
            if args[0] != args[1]:
                raise FrontendError(
                    f"unsupported addi form {text!r} "
                    f"(expected addi xd,xd,imm)",
                    lineno,
                )
            self.fold_imm_add(state, args[0], int(args[2]), lineno)
            return
        if m := re.fullmatch(r"(lw|lr\.w)(\.aq)?", op):
            self._argc(args, 2, text, lineno)
            excl = m.group(1) == "lr.w"
            acq = m.group(2) is not None
            loc, addr_dep = self._addr(state, args[1], lineno)
            neutral = self.neutral_of_reg(args[0])
            if neutral is None:
                raise FrontendError(f"bad destination {args[0]!r}", lineno)
            labels = frozenset({Label.ACQ}) if acq else frozenset()
            state.instrs.append(
                Load(neutral, loc, labels=labels, addr_dep=addr_dep, excl=excl)
            )
            state.env[args[0]] = ("prog", neutral)
            return
        if m := re.fullmatch(r"sw(\.rl)?", op):
            self._argc(args, 2, text, lineno)
            self._store(state, args[0], args[1], m.group(1), False, lineno)
            return
        if m := re.fullmatch(r"sc\.w(\.rl)?", op):
            self._argc(args, 3, text, lineno)
            state.env[args[0]] = ("status",)
            self._store(state, args[1], args[2], m.group(1), True, lineno)
            return
        if op in ("bnez", "beqz"):
            reg = args[0] if args else ""
            value = state.env.get(reg)
            if value is not None and value[0] == "status":
                return  # sc.w retry plumbing
            self.fold_branch(state, reg, lineno)
            return
        raise FrontendError(f"unknown RISC-V instruction {text!r}", lineno)

    def _argc(self, args, n, text, lineno) -> None:
        if len(args) != n:
            raise FrontendError(f"malformed instruction {text!r}", lineno)

    def _addr(
        self, state: ThreadState, token: str, lineno: int
    ) -> tuple[str, tuple[str, ...]]:
        m = _ADDR.match(token)
        if not m:
            raise FrontendError(f"bad address {token!r}", lineno)
        if int(m.group(1)) != 0:
            raise FrontendError(
                f"non-zero address offset {m.group(1)} is not supported",
                lineno,
            )
        return self.location_of(state, m.group(2), lineno)

    def _store(
        self, state, value_reg, addr, rel, excl: bool, lineno
    ) -> None:
        value, data_dep = self.fold_store_value(state, value_reg, lineno)
        loc, addr_dep = self._addr(state, addr, lineno)
        labels = frozenset({Label.REL}) if rel else frozenset()
        state.instrs.append(
            Store(
                loc,
                value,
                labels=labels,
                data_dep=data_dep,
                addr_dep=addr_dep,
                excl=excl,
            )
        )

    # ------------------------------------------------------------------

    def render_thread(self, tid: int, thread, scratch_base: int) -> list[str]:
        lines: list[str] = []
        scratch = scratch_base + 5  # dialect numbering is neutral + 5
        label = 0

        def mix_into(deps: tuple[str, ...]) -> str:
            nonlocal scratch
            reg = f"x{scratch}"
            scratch += 1
            first = self.reg_of_neutral(deps[0])
            second = self.reg_of_neutral(deps[1]) if len(deps) > 1 else first
            lines.append(f"xor {reg},{first},{second}")
            for extra in deps[2:]:
                lines.append(f"xor {reg},{reg},{self.reg_of_neutral(extra)}")
            return reg

        def addr_of(loc: str, addr_dep: tuple[str, ...]) -> str:
            if addr_dep:
                reg = mix_into(addr_dep)
                lines.append(f"add {reg},{reg},{loc}")
                return f"0({reg})"
            return f"0({loc})"

        for instr in thread:
            if isinstance(instr, TxBegin):
                if instr.atomic:
                    raise ValueError(
                        "C++ atomic{} transactions have no RISC-V rendering"
                    )
                lines.append("tx.begin")
            elif isinstance(instr, TxEnd):
                lines.append("tx.end")
            elif isinstance(instr, TxAbort):
                if instr.reg is None:
                    lines.append("tx.abort")
                else:
                    lines.append(f"tx.abort {self.reg_of_neutral(instr.reg)}")
            elif isinstance(instr, Fence):
                try:
                    lines.append(_FENCE_OUT[instr.kind])
                except KeyError:
                    raise ValueError(
                        f"no RISC-V rendering for fence {instr.kind!r}"
                    ) from None
            elif isinstance(instr, CtrlBranch):
                if len(instr.regs) == 1:
                    reg = self.reg_of_neutral(instr.regs[0])
                else:
                    reg = f"x{scratch}"
                    scratch += 1
                    first = self.reg_of_neutral(instr.regs[0])
                    second = self.reg_of_neutral(instr.regs[1])
                    lines.append(f"or {reg},{first},{second}")
                    for extra in instr.regs[2:]:
                        lines.append(
                            f"or {reg},{reg},{self.reg_of_neutral(extra)}"
                        )
                lines.append(f"bnez {reg},LC{tid}{label}")
                lines.append(f"LC{tid}{label}:")
                label += 1
            elif isinstance(instr, Load):
                acq = ".aq" if Label.ACQ in instr.labels else ""
                op = ("lr.w" if instr.excl else "lw") + acq
                lines.append(
                    f"{op} {self.reg_of_neutral(instr.dst)},"
                    f"{addr_of(instr.loc, instr.addr_dep)}"
                )
            elif isinstance(instr, Store):
                rel = ".rl" if Label.REL in instr.labels else ""
                if instr.data_dep:
                    value_reg = mix_into(instr.data_dep)
                    lines.append(f"addi {value_reg},{value_reg},{instr.value}")
                else:
                    value_reg = f"x{scratch}"
                    scratch += 1
                    lines.append(f"li {value_reg},{instr.value}")
                addr = addr_of(instr.loc, instr.addr_dep)
                if instr.excl:
                    status = f"x{scratch}"
                    scratch += 1
                    lines.append(f"sc.w{rel} {status},{value_reg},{addr}")
                else:
                    lines.append(f"sw{rel} {value_reg},{addr}")
            else:
                raise ValueError(f"cannot render {instr!r} as RISC-V")
        return lines
