"""Convert executions into litmus tests (paper sections 2.2 and 3.2).

The construction ensures the postcondition passes exactly when the
intended execution is taken:

* every store writes a unique non-zero value (the write's coherence
  position);
* each load's destination register is checked against the value of the
  write it is intended to observe (or 0 for the initial value), fixing
  the ``rf`` edges;
* the final value of every written location is checked, fixing the last
  ``co`` edge (with more than two writes per location the intermediate
  ``co`` order is additionally pinned by the distinct values — see the
  paper's footnote 2);
* every transaction's success is checked through a per-transaction ``ok``
  flag that its fail handler zeroes (section 3.2).
"""

from __future__ import annotations

from ..core.events import EventKind, Label
from ..core.execution import Execution
from .program import CtrlBranch, Fence, Instruction, Load, Program, Store, TxBegin, TxEnd
from .test import Atom, CoSeq, LitmusTest, MemEq, RegEq, TxnOk

__all__ = ["to_litmus"]


def to_litmus(x: Execution, name: str, arch: str) -> LitmusTest:
    """Build the litmus test whose passing outcome witnesses ``x``."""
    values = x.write_values
    reg_of: dict[int, str] = {}
    for tid, thread in enumerate(x.threads):
        counter = 0
        for eid in thread:
            if x.events[eid].is_read:
                reg_of[eid] = f"r{counter}"
                counter += 1

    # Control dependencies: a branch is inserted before the *earliest*
    # target of each read's ctrl edges; real branches order everything
    # after them, which only downward-closes the dependency set.
    ctrl_before: dict[int, list[str]] = {}
    for src, tgt in sorted(x.ctrl):
        pos = {e: i for i, e in enumerate(x.threads[x.tid_of[src]])}
        earliest = min(
            (t for s, t in x.ctrl if s == src), key=lambda e: pos.get(e, 1 << 30)
        )
        regs = ctrl_before.setdefault(earliest, [])
        if reg_of[src] not in regs:
            regs.append(reg_of[src])

    data_regs: dict[int, list[str]] = {}
    for src, tgt in sorted(x.data):
        data_regs.setdefault(tgt, []).append(reg_of[src])
    addr_regs: dict[int, list[str]] = {}
    for src, tgt in sorted(x.addr):
        addr_regs.setdefault(tgt, []).append(reg_of[src])

    excl_events = {e for pair in x.rmw for e in pair}

    threads: list[list[Instruction]] = []
    txn_index: dict[int, tuple[int, int]] = {}  # txn idx -> (tid, per-thread idx)
    for tid, thread in enumerate(x.threads):
        instrs: list[Instruction] = []
        per_thread_txns = 0
        open_txn: int | None = None
        for eid in thread:
            event = x.events[eid]
            this_txn = x.txn_of.get(eid)
            if open_txn is not None and this_txn != open_txn:
                instrs.append(TxEnd())
                open_txn = None
            if this_txn is not None and this_txn != open_txn:
                instrs.append(TxBegin(atomic=x.txns[this_txn].atomic))
                txn_index[this_txn] = (tid, per_thread_txns)
                per_thread_txns += 1
                open_txn = this_txn
            if eid in ctrl_before:
                instrs.append(CtrlBranch(tuple(ctrl_before[eid])))
            if event.is_read:
                instrs.append(
                    Load(
                        dst=reg_of[eid],
                        loc=event.loc,
                        labels=event.labels - {Label.EXCL},
                        addr_dep=tuple(addr_regs.get(eid, ())),
                        excl=eid in excl_events,
                    )
                )
            elif event.is_write:
                instrs.append(
                    Store(
                        loc=event.loc,
                        value=values[eid],
                        labels=event.labels - {Label.EXCL},
                        data_dep=tuple(data_regs.get(eid, ())),
                        addr_dep=tuple(addr_regs.get(eid, ())),
                        excl=eid in excl_events,
                    )
                )
            elif event.is_fence:
                instrs.append(Fence(event.fence_kind))
            else:
                raise ValueError(
                    f"cannot emit litmus code for call event e{eid}"
                )
        if open_txn is not None:
            instrs.append(TxEnd())
        threads.append(instrs)

    postcondition: list[Atom] = []
    for txn_idx in sorted(txn_index):
        tid, per_thread = txn_index[txn_idx]
        postcondition.append(TxnOk(tid, per_thread, ok=True))
    for tid, thread in enumerate(x.threads):
        for eid in thread:
            if x.events[eid].is_read:
                postcondition.append(RegEq(tid, reg_of[eid], x.read_value(eid)))
    for loc in x.locations:
        writes_here = [w for w in x.writes if x.events[w].loc == loc]
        if writes_here:
            postcondition.append(MemEq(loc, x.final_value(loc)))
        # Footnote 2: with three or more writes, the final value cannot
        # pin every co-edge; carry the full coherence sequence.
        if len(writes_here) >= 3:
            postcondition.append(
                CoSeq(loc, tuple(values[w] for w in x.co[loc]))
            )

    return LitmusTest(
        name=name,
        arch=arch,
        program=Program(tuple(tuple(t) for t in threads)),
        postcondition=tuple(postcondition),
    )
