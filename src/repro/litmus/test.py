"""Litmus tests: a program plus a postcondition.

The postcondition is a conjunction of atoms over final register values,
final memory values, and transaction outcomes, exactly as in the paper's
Figs. 1 and 2 (``Test: ok = 1 ∧ r0 = 2 ∧ x = 2``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .program import Program

__all__ = [
    "RegEq",
    "MemEq",
    "TxnOk",
    "CoSeq",
    "Atom",
    "LitmusTest",
    "Outcome",
    "QUANTIFIERS",
]


@dataclass(frozen=True)
class RegEq:
    """Register ``reg`` of thread ``tid`` must end holding ``value``."""

    tid: int
    reg: str
    value: int

    def __str__(self) -> str:
        return f"{self.tid}:{self.reg} = {self.value}"


@dataclass(frozen=True)
class MemEq:
    """Location ``loc`` must end holding ``value``."""

    loc: str
    value: int

    def __str__(self) -> str:
        return f"{self.loc} = {self.value}"


@dataclass(frozen=True)
class TxnOk:
    """Transaction number ``index`` of thread ``tid`` must commit
    (``ok=True``) or abort (``ok=False``)."""

    tid: int
    index: int
    ok: bool = True

    def __str__(self) -> str:
        return f"txn({self.tid},{self.index}) {'ok' if self.ok else 'aborted'}"


@dataclass(frozen=True)
class CoSeq:
    """The writes to ``loc`` must hit memory in exactly this value order.

    This is the paper's footnote 2: with more than two writes to a
    location, the final value alone cannot pin every co-edge, so the
    test carries the full intended coherence sequence.  The axiomatic
    checker reads it off ``co``; the operational machine logs the order
    writes drain/commit to memory.
    """

    loc: str
    values: tuple[int, ...]

    def __str__(self) -> str:
        chain = " -> ".join(str(v) for v in self.values)
        return f"co({self.loc}) = {chain}"


Atom = Union[RegEq, MemEq, TxnOk, CoSeq]


@dataclass(frozen=True)
class Outcome:
    """A final machine state: registers, memory, txn commit bits, and the
    per-location order in which write values hit memory (``co``)."""

    registers: dict[tuple[int, str], int]
    memory: dict[str, int]
    committed: frozenset[tuple[int, int]] = frozenset()
    aborted: frozenset[tuple[int, int]] = frozenset()
    write_orders: dict[str, tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.write_orders is None:
            object.__setattr__(self, "write_orders", {})

    def key(self) -> tuple:
        return (
            tuple(sorted(self.registers.items())),
            tuple(sorted(self.memory.items())),
            tuple(sorted(self.committed)),
            tuple(sorted(self.aborted)),
            tuple(sorted(self.write_orders.items())),
        )

    def __hash__(self) -> int:
        return hash(self.key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Outcome):
            return NotImplemented
        return self.key() == other.key()

    def satisfies(self, atom: Atom) -> bool:
        if isinstance(atom, RegEq):
            return self.registers.get((atom.tid, atom.reg), 0) == atom.value
        if isinstance(atom, MemEq):
            return self.memory.get(atom.loc, 0) == atom.value
        if isinstance(atom, TxnOk):
            key = (atom.tid, atom.index)
            return key in (self.committed if atom.ok else self.aborted)
        if isinstance(atom, CoSeq):
            return self.write_orders.get(atom.loc, ()) == atom.values
        raise TypeError(f"unknown atom {atom!r}")


#: Postcondition quantifiers (herd7's three condition forms).
QUANTIFIERS = ("exists", "~exists", "forall")


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus test for a given architecture.

    ``quantifier`` follows herd7's condition forms: ``exists`` asks
    whether some final state satisfies the atoms (the Litmus-tool
    question), ``~exists`` carries the same observability semantics but
    *expects* the answer no (a conformance assertion), and ``forall``
    asks whether *every* reachable final state satisfies the atoms.

    ``init`` is normalised to cover exactly the program's locations
    (missing entries default to 0), so parse/dump round-trips compare
    equal regardless of how explicitly the source spelled the inits.
    The checking semantics always starts memory at zero; non-zero inits
    are rejected at the parser level.
    """

    name: str
    arch: str
    program: Program
    postcondition: tuple[Atom, ...]
    init: dict[str, int] = field(default_factory=dict)
    quantifier: str = "exists"

    def __post_init__(self) -> None:
        if self.quantifier not in QUANTIFIERS:
            raise ValueError(
                f"unknown quantifier {self.quantifier!r}; "
                f"use one of {', '.join(QUANTIFIERS)}"
            )
        object.__setattr__(
            self,
            "init",
            {loc: self.init.get(loc, 0) for loc in self.program.locations()},
        )

    def check(self, outcome: Outcome) -> bool:
        """True iff ``outcome`` satisfies every postcondition atom."""
        return all(outcome.satisfies(atom) for atom in self.postcondition)

    def postcondition_str(self) -> str:
        return " /\\ ".join(str(atom) for atom in self.postcondition)

    def __str__(self) -> str:
        return (
            f"{self.arch} {self.name}: "
            f"{self.quantifier} ({self.postcondition_str()})"
        )
