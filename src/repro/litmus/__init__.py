"""Litmus tests: programs, postconditions, conversion, expansion, text."""

from .candidates import (
    Candidate,
    all_outcomes,
    brute_force_candidates,
    brute_force_forall,
    candidate_executions,
    expand_test,
    forall_holds,
    observable,
    set_expansion_cache_limit,
)
from .from_execution import to_litmus
from .frontend import (
    detect_dialect,
    dump_dialect,
    load_any,
    load_dialect,
    load_litmus_file,
)
from .parse import ParseError, dumps, loads
from .program import CtrlBranch, Fence, Instruction, Load, Program, Store, TxBegin, TxEnd
from .render import render, render_armv8, render_cpp, render_power, render_x86
from .test import QUANTIFIERS, Atom, LitmusTest, MemEq, Outcome, RegEq, TxnOk

__all__ = [
    "Atom",
    "Candidate",
    "CtrlBranch",
    "Fence",
    "Instruction",
    "LitmusTest",
    "Load",
    "MemEq",
    "Outcome",
    "ParseError",
    "Program",
    "QUANTIFIERS",
    "RegEq",
    "Store",
    "TxBegin",
    "TxEnd",
    "TxnOk",
    "all_outcomes",
    "brute_force_candidates",
    "brute_force_forall",
    "candidate_executions",
    "detect_dialect",
    "dump_dialect",
    "dumps",
    "expand_test",
    "forall_holds",
    "load_any",
    "load_dialect",
    "load_litmus_file",
    "loads",
    "observable",
    "set_expansion_cache_limit",
    "render",
    "render_armv8",
    "render_cpp",
    "render_power",
    "render_x86",
    "to_litmus",
]
