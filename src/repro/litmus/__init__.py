"""Litmus tests: programs, postconditions, conversion, expansion, text."""

from .candidates import (
    Candidate,
    all_outcomes,
    brute_force_candidates,
    candidate_executions,
    expand_test,
    observable,
    set_expansion_cache_limit,
)
from .from_execution import to_litmus
from .parse import ParseError, dumps, loads
from .program import CtrlBranch, Fence, Instruction, Load, Program, Store, TxBegin, TxEnd
from .render import render, render_armv8, render_cpp, render_power, render_x86
from .test import Atom, LitmusTest, MemEq, Outcome, RegEq, TxnOk

__all__ = [
    "Atom",
    "Candidate",
    "CtrlBranch",
    "Fence",
    "Instruction",
    "LitmusTest",
    "Load",
    "MemEq",
    "Outcome",
    "ParseError",
    "Program",
    "RegEq",
    "Store",
    "TxBegin",
    "TxEnd",
    "TxnOk",
    "all_outcomes",
    "brute_force_candidates",
    "candidate_executions",
    "dumps",
    "expand_test",
    "loads",
    "observable",
    "set_expansion_cache_limit",
    "render",
    "render_armv8",
    "render_cpp",
    "render_power",
    "render_x86",
    "to_litmus",
]
