"""Parser for the neutral litmus format.

The format is line-based and mirrors the instruction set of
:mod:`repro.litmus.program` one-to-one, so tests round-trip through
:func:`dumps`/:func:`loads`::

    litmus "sb+txn" x86
    init x=0 y=0
    thread
      txbegin
      store x 1
      load r0 y
      txend
    thread
      store y 1
      load r0 x
    exists 0:r0=0 & 1:r0=0 & txn(0,0)=ok

Instruction syntax:

* ``load REG LOC [label,...]`` / ``store LOC VALUE [label,...]``
* options after the operands: ``excl``, ``data=REG[,REG]``,
  ``addr=REG[,REG]``
* ``fence KIND``, ``branch REG[,REG]``, ``txbegin [atomic]``, ``txend``

Postcondition atoms: ``TID:REG=V``, ``LOC=V``, ``txn(TID,IDX)=ok|aborted``.
"""

from __future__ import annotations

import re
import shlex

from .program import (
    CtrlBranch,
    Fence,
    Instruction,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from .test import Atom, CoSeq, LitmusTest, MemEq, RegEq, TxnOk

__all__ = ["loads", "dumps", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed litmus text."""


_HEADER = re.compile(r'^litmus\s+"([^"]+)"\s+(\w[\w+-]*)$')
_REG_ATOM = re.compile(r"^(\d+):(\w+)=(-?\d+)$")
_MEM_ATOM = re.compile(r"^(\w+)=(-?\d+)$")
_TXN_ATOM = re.compile(r"^txn\((\d+),(\d+)\)=(ok|aborted)$")
_CO_ATOM = re.compile(r"^co\((\w+)\)=((?:-?\d+)(?:,-?\d+)*)$")


def _parse_options(parts: list[str]) -> dict:
    opts: dict = {"labels": frozenset(), "excl": False, "data": (), "addr": ()}
    for part in parts:
        if part == "excl":
            opts["excl"] = True
        elif part.startswith("data="):
            opts["data"] = tuple(part[5:].split(","))
        elif part.startswith("addr="):
            opts["addr"] = tuple(part[5:].split(","))
        else:
            opts["labels"] = opts["labels"] | frozenset(part.split(","))
    return opts


def _parse_instruction(line: str, lineno: int) -> Instruction:
    parts = shlex.split(line)
    op = parts[0]
    try:
        if op == "load":
            opts = _parse_options(parts[3:])
            return Load(
                dst=parts[1],
                loc=parts[2],
                labels=opts["labels"],
                addr_dep=opts["addr"],
                excl=opts["excl"],
            )
        if op == "store":
            opts = _parse_options(parts[3:])
            return Store(
                loc=parts[1],
                value=int(parts[2]),
                labels=opts["labels"],
                data_dep=opts["data"],
                addr_dep=opts["addr"],
                excl=opts["excl"],
            )
        if op == "fence":
            return Fence(parts[1])
        if op == "branch":
            return CtrlBranch(tuple(parts[1].split(",")))
        if op == "txbegin":
            return TxBegin(atomic="atomic" in parts[1:])
        if op == "txabort":
            return TxAbort(parts[1] if len(parts) > 1 else None)
        if op == "txend":
            return TxEnd()
    except (IndexError, ValueError) as exc:
        raise ParseError(f"line {lineno}: {exc}") from exc
    raise ParseError(f"line {lineno}: unknown instruction {op!r}")


def _parse_atom(text: str, lineno: int) -> Atom:
    text = text.strip()
    if m := _TXN_ATOM.match(text):
        return TxnOk(int(m.group(1)), int(m.group(2)), m.group(3) == "ok")
    if m := _CO_ATOM.match(text):
        values = tuple(int(v) for v in m.group(2).split(","))
        return CoSeq(m.group(1), values)
    if m := _REG_ATOM.match(text):
        return RegEq(int(m.group(1)), m.group(2), int(m.group(3)))
    if m := _MEM_ATOM.match(text):
        return MemEq(m.group(1), int(m.group(2)))
    raise ParseError(f"line {lineno}: bad postcondition atom {text!r}")


_QUANT = re.compile(r"^(~exists|exists|forall)\b(.*)$")


def loads(text: str) -> LitmusTest:
    """Parse a litmus test from its textual form."""
    name = arch = None
    init: dict[str, int] = {}
    threads: list[list[Instruction]] = []
    atoms: list[Atom] = []
    quantifier = "exists"
    current: list[Instruction] | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if m := _HEADER.match(line):
            name, arch = m.group(1), m.group(2)
        elif line.startswith("init"):
            for part in line.split()[1:]:
                loc, _, value = part.partition("=")
                init[loc] = int(value)
        elif line == "thread":
            current = []
            threads.append(current)
        elif m := _QUANT.match(line):
            quantifier = m.group(1)
            rest = m.group(2).strip()
            if rest:
                for part in rest.split("&"):
                    atoms.append(_parse_atom(part, lineno))
        else:
            if current is None:
                raise ParseError(f"line {lineno}: instruction outside a thread")
            current.append(_parse_instruction(line, lineno))

    if name is None or arch is None:
        raise ParseError("missing litmus header line")
    if not threads:
        raise ParseError("litmus test has no threads")
    return LitmusTest(
        name=name,
        arch=arch,
        program=Program(tuple(tuple(t) for t in threads)),
        postcondition=tuple(atoms),
        init=init,
        quantifier=quantifier,
    )


def dumps(test: LitmusTest) -> str:
    """Serialise a litmus test into the neutral format."""
    lines = [f'litmus "{test.name}" {test.arch}']
    locs = test.program.locations()
    if locs:
        lines.append(
            "init " + " ".join(f"{loc}={test.init.get(loc, 0)}" for loc in locs)
        )
    for thread in test.program.threads:
        lines.append("thread")
        for instr in thread:
            lines.append("  " + _dump_instruction(instr))
    if test.postcondition or test.quantifier != "exists":
        line = test.quantifier
        if test.postcondition:
            line += " " + " & ".join(_dump_atom(a) for a in test.postcondition)
        lines.append(line)
    return "\n".join(lines) + "\n"


def _dump_instruction(instr: Instruction) -> str:
    if isinstance(instr, Load):
        parts = ["load", instr.dst, instr.loc]
        if instr.labels:
            parts.append(",".join(sorted(instr.labels)))
        if instr.addr_dep:
            parts.append("addr=" + ",".join(instr.addr_dep))
        if instr.excl:
            parts.append("excl")
        return " ".join(parts)
    if isinstance(instr, Store):
        parts = ["store", instr.loc, str(instr.value)]
        if instr.labels:
            parts.append(",".join(sorted(instr.labels)))
        if instr.data_dep:
            parts.append("data=" + ",".join(instr.data_dep))
        if instr.addr_dep:
            parts.append("addr=" + ",".join(instr.addr_dep))
        if instr.excl:
            parts.append("excl")
        return " ".join(parts)
    if isinstance(instr, Fence):
        return f"fence {instr.kind}"
    if isinstance(instr, CtrlBranch):
        return "branch " + ",".join(instr.regs)
    if isinstance(instr, TxBegin):
        return "txbegin atomic" if instr.atomic else "txbegin"
    if isinstance(instr, TxAbort):
        return f"txabort {instr.reg}" if instr.reg else "txabort"
    if isinstance(instr, TxEnd):
        return "txend"
    raise TypeError(f"unknown instruction {instr!r}")


def _dump_atom(atom: Atom) -> str:
    if isinstance(atom, RegEq):
        return f"{atom.tid}:{atom.reg}={atom.value}"
    if isinstance(atom, MemEq):
        return f"{atom.loc}={atom.value}"
    if isinstance(atom, TxnOk):
        return f"txn({atom.tid},{atom.index})={'ok' if atom.ok else 'aborted'}"
    if isinstance(atom, CoSeq):
        return f"co({atom.loc})=" + ",".join(str(v) for v in atom.values)
    raise TypeError(f"unknown atom {atom!r}")
