"""Litmus programs: a small architecture-neutral instruction set.

Litmus tests are programs with a postcondition (section 2.2).  We keep the
program representation neutral — loads, stores, fences, transaction
brackets, and register-carried dependencies — and specialise the surface
syntax per architecture in :mod:`repro.litmus.render`.

Dependency encoding follows litmus-tool conventions:

* a **data** dependency is a store whose value is computed from a register
  (``Store(..., data_dep=("r0",))`` renders as ``eor``/``xor`` tricks);
* an **address** dependency is an access whose address mixes in a register
  (``addr_dep=("r0",)``);
* a **control** dependency is a conditional branch on a register
  (``CtrlBranch(("r0",))``) — every po-later event in the thread is
  control-dependent on the loads that produced the registers.

Exclusives (``excl=True`` on Load/Store) model Power/ARM
load-/store-exclusive pairs; an exclusive store is paired with the
closest preceding exclusive load on the same location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = [
    "Load",
    "Store",
    "Fence",
    "CtrlBranch",
    "TxBegin",
    "TxAbort",
    "TxEnd",
    "Instruction",
    "Program",
]


@dataclass(frozen=True)
class Load:
    """Load ``loc`` into register ``dst``."""

    dst: str
    loc: str
    labels: frozenset[str] = field(default_factory=frozenset)
    addr_dep: tuple[str, ...] = ()
    excl: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", frozenset(self.labels))


@dataclass(frozen=True)
class Store:
    """Store constant ``value`` to ``loc`` (optionally via registers)."""

    loc: str
    value: int
    labels: frozenset[str] = field(default_factory=frozenset)
    data_dep: tuple[str, ...] = ()
    addr_dep: tuple[str, ...] = ()
    excl: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", frozenset(self.labels))


@dataclass(frozen=True)
class Fence:
    """An architecture fence of the given flavour (``sync``, ``dmb``…)."""

    kind: str


@dataclass(frozen=True)
class CtrlBranch:
    """A conditional branch on ``regs``: induces control dependencies from
    the loads defining those registers to every later event."""

    regs: tuple[str, ...]


@dataclass(frozen=True)
class TxBegin:
    """Start of a transaction.  ``atomic`` marks C++ ``atomic{}``."""

    atomic: bool = False


@dataclass(frozen=True)
class TxAbort:
    """An explicit ``abort()``/``TXABORT`` inside a transaction.

    ``reg is None`` aborts unconditionally: the transaction can *never*
    commit (the paper's Remark 7.1 case, whose race semantics
    :mod:`repro.models.aborts` implements).  With a register, the abort
    fires iff the register is non-zero — the self-abort idiom of lock
    elision ("load the lock variable and abort if non-zero",
    Example 1.1).  Conditional aborts are resolved by the operational
    machines and by the candidate expansion (which knows every read's
    value from the rf choice).
    """

    reg: str | None = None


@dataclass(frozen=True)
class TxEnd:
    """End of the innermost open transaction."""


Instruction = Union[Load, Store, Fence, CtrlBranch, TxBegin, TxAbort, TxEnd]


@dataclass(frozen=True)
class Program:
    """A multi-threaded litmus program."""

    threads: tuple[tuple[Instruction, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "threads", tuple(tuple(t) for t in self.threads)
        )
        problems = self.validate()
        if problems:
            raise ValueError("; ".join(problems))

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def locations(self) -> tuple[str, ...]:
        """All memory locations, in first-use order."""
        seen: dict[str, None] = {}
        for thread in self.threads:
            for instr in thread:
                if isinstance(instr, (Load, Store)) and instr.loc not in seen:
                    seen[instr.loc] = None
        return tuple(seen)

    def stores(self) -> Iterator[tuple[int, int, Store]]:
        """Yield ``(tid, index, store)`` for every store."""
        for tid, thread in enumerate(self.threads):
            for idx, instr in enumerate(thread):
                if isinstance(instr, Store):
                    yield tid, idx, instr

    def loads(self) -> Iterator[tuple[int, int, Load]]:
        """Yield ``(tid, index, load)`` for every load."""
        for tid, thread in enumerate(self.threads):
            for idx, instr in enumerate(thread):
                if isinstance(instr, Load):
                    yield tid, idx, instr

    def validate(self) -> list[str]:
        """Structural validation: balanced txn brackets, unique store
        values per location, registers defined before use."""
        problems = []
        values: dict[str, set[int]] = {}
        for tid, thread in enumerate(self.threads):
            depth = 0
            defined: set[str] = set()
            for idx, instr in enumerate(thread):
                where = f"thread {tid} instr {idx}"
                if isinstance(instr, TxBegin):
                    if depth:
                        problems.append(f"{where}: nested transaction")
                    depth += 1
                elif isinstance(instr, TxEnd):
                    if not depth:
                        problems.append(f"{where}: txend without txbegin")
                    depth -= 1
                elif isinstance(instr, Load):
                    for reg in instr.addr_dep:
                        if reg not in defined:
                            problems.append(f"{where}: undefined register {reg}")
                    defined.add(instr.dst)
                elif isinstance(instr, Store):
                    for reg in instr.data_dep + instr.addr_dep:
                        if reg not in defined:
                            problems.append(f"{where}: undefined register {reg}")
                    if instr.value in values.setdefault(instr.loc, set()):
                        problems.append(
                            f"{where}: duplicate value {instr.value} for "
                            f"{instr.loc}"
                        )
                    values[instr.loc].add(instr.value)
                    if instr.value == 0:
                        problems.append(f"{where}: stores must be non-zero")
                elif isinstance(instr, CtrlBranch):
                    for reg in instr.regs:
                        if reg not in defined:
                            problems.append(f"{where}: undefined register {reg}")
                elif isinstance(instr, TxAbort):
                    if not depth:
                        problems.append(f"{where}: txabort outside a transaction")
                    if instr.reg is not None and instr.reg not in defined:
                        problems.append(
                            f"{where}: undefined register {instr.reg}"
                        )
            if depth:
                problems.append(f"thread {tid}: unclosed transaction")
        return problems
