"""Expand a litmus program into its candidate executions.

This is the front half of a herd-style axiomatic checker (the paper's
"candidate executions of a program are obtained by assuming a
non-deterministic memory system", section 2): every load may observe any
same-location store or the initial value, every location's stores are
ordered arbitrarily by coherence, and every transaction independently
commits or aborts (an aborted transaction's events vanish, section 3.1).

:func:`observable` then answers the question the Litmus tool answers on
hardware: can this test's postcondition be satisfied under a given model?
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from ..core.events import Event, EventKind, Label
from ..core.execution import Execution, Transaction
from ..models.base import MemoryModel
from .program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from .test import LitmusTest, Outcome

__all__ = [
    "Candidate",
    "candidate_executions",
    "expand_program",
    "observable",
    "all_outcomes",
]


@dataclass(frozen=True)
class Candidate:
    """One candidate execution of a program plus its final state."""

    execution: Execution
    outcome: Outcome


@dataclass
class _ThreadShape:
    """Per-thread expansion state for one commit/abort choice."""

    events: list[Event]
    regs: dict[str, int]  # register -> defining load event (thread-local id)
    reads: list[tuple[int, str]]  # (local event id, dst register)
    store_values: dict[int, int]  # local event id -> stored value
    addr: list[tuple[int, int]]
    data: list[tuple[int, int]]
    ctrl: list[tuple[int, int]]
    rmw: list[tuple[int, int]]
    txns: list[tuple[int, int, bool]]  # (first, last, atomic) local ids
    #: Commit feasibility conditions from conditional TxAborts inside
    #: *committed* transactions: (local read event id, required value is
    #: zero).  A committed transaction means no abort fired, so every
    #: condition register must have read zero.
    abort_conditions: list[int]


def _expand_thread(
    thread: tuple, committed: dict[int, bool]
) -> _ThreadShape | None:
    """Expand one thread given commit decisions for its transactions.

    Returns ``None`` if a transaction chosen as committed contains an
    unconditional ``TxAbort`` — that choice is infeasible (Remark 7.1:
    such a transaction never succeeds).
    """
    shape = _ThreadShape([], {}, [], {}, [], [], [], [], [], [])
    pending_ctrl: list[int] = []  # defining loads of all open branches
    open_excl: dict[str, int] = {}  # loc -> unpaired exclusive load
    txn_counter = -1
    in_txn = False
    txn_start = 0
    txn_atomic = False
    skipping = False

    for instr in thread:
        if isinstance(instr, TxBegin):
            txn_counter += 1
            if committed[txn_counter]:
                in_txn = True
                txn_atomic = instr.atomic
                txn_start = len(shape.events)
            else:
                skipping = True
            continue
        if isinstance(instr, TxEnd):
            if skipping:
                skipping = False
            elif in_txn:
                in_txn = False
                if len(shape.events) > txn_start:
                    shape.txns.append(
                        (txn_start, len(shape.events) - 1, txn_atomic)
                    )
            continue
        if skipping:
            continue
        if isinstance(instr, TxAbort):
            if not in_txn:
                continue
            if instr.reg is None:
                return None  # committed choice is infeasible
            shape.abort_conditions.append(shape.regs[instr.reg])
            continue
        if isinstance(instr, CtrlBranch):
            for reg in instr.regs:
                pending_ctrl.append(shape.regs[reg])
            continue
        if isinstance(instr, Fence):
            eid = len(shape.events)
            shape.events.append(Event(EventKind.FENCE, None, frozenset({instr.kind})))
            shape.ctrl.extend((src, eid) for src in pending_ctrl)
            continue
        if isinstance(instr, Load):
            eid = len(shape.events)
            labels = set(instr.labels)
            if instr.excl:
                labels.add(Label.EXCL)
            shape.events.append(Event(EventKind.READ, instr.loc, frozenset(labels)))
            shape.regs[instr.dst] = eid
            shape.reads.append((eid, instr.dst))
            shape.addr.extend((shape.regs[r], eid) for r in instr.addr_dep)
            shape.ctrl.extend((src, eid) for src in pending_ctrl)
            if instr.excl:
                open_excl[instr.loc] = eid
            continue
        if isinstance(instr, Store):
            eid = len(shape.events)
            labels = set(instr.labels)
            if instr.excl:
                labels.add(Label.EXCL)
            shape.events.append(Event(EventKind.WRITE, instr.loc, frozenset(labels)))
            shape.store_values[eid] = instr.value
            shape.data.extend((shape.regs[r], eid) for r in instr.data_dep)
            shape.addr.extend((shape.regs[r], eid) for r in instr.addr_dep)
            shape.ctrl.extend((src, eid) for src in pending_ctrl)
            if instr.excl and instr.loc in open_excl:
                shape.rmw.append((open_excl.pop(instr.loc), eid))
            continue
        raise TypeError(f"unknown instruction {instr!r}")
    return shape


def _txn_counts(program: Program) -> list[int]:
    return [
        sum(isinstance(i, TxBegin) for i in thread) for thread in program.threads
    ]


class _LazyExpansion:
    """A replayable view of one program's candidate stream.

    Candidates are pulled from the underlying enumerator on demand and
    retained, so early-exiting consumers (:func:`observable` stops at
    the first witness) pay only for the prefix they visit, while later
    consumers — the same test checked against another model — replay
    the retained prefix instead of re-enumerating.
    """

    def __init__(self, program: Program) -> None:
        self._source = _enumerate_candidates(program)
        self._seen: list[Candidate] = []
        self._done = False

    def __iter__(self) -> Iterator[Candidate]:
        i = 0
        while True:
            if i < len(self._seen):
                yield self._seen[i]
                i += 1
            elif self._done:
                return
            else:
                try:
                    self._seen.append(next(self._source))
                except StopIteration:
                    self._done = True


def candidate_executions(program: Program) -> Iterator[Candidate]:
    """Yield every candidate execution of ``program``.

    Expansion is memoized per program (see :func:`expand_program`), so
    checking the same test against many models — the campaign engine's
    cross-product, repeated :func:`observable` calls — enumerates once.
    The stream stays lazy: consumers that stop early (a postcondition
    witnessed by the first candidate) never force the full expansion.
    """
    return iter(expand_program(program))


@lru_cache(maxsize=256)
def expand_program(program: Program) -> _LazyExpansion:
    """The memoized (lazily materialized) expansion of ``program``.

    ``Program`` is a frozen dataclass, so the cache key is structural:
    two syntactically identical tests share one expansion.  The cache is
    bounded; ``expand_program.cache_clear()`` resets it (tests use this).
    """
    return _LazyExpansion(program)


def _enumerate_candidates(program: Program) -> Iterator[Candidate]:
    counts = _txn_counts(program)
    commit_spaces = [
        list(itertools.product([True, False], repeat=c)) for c in counts
    ]
    for commit_choice in itertools.product(*commit_spaces):
        committed_sets = [
            {i: ok for i, ok in enumerate(choices)} for choices in commit_choice
        ]
        shapes = [
            _expand_thread(thread, committed_sets[tid])
            for tid, thread in enumerate(program.threads)
        ]
        if any(shape is None for shape in shapes):
            continue  # a committed transaction aborts unconditionally
        yield from _expand_memory(program, shapes, committed_sets)


def _expand_memory(
    program: Program,
    shapes: list[_ThreadShape],
    committed_sets: list[dict[int, bool]],
) -> Iterator[Candidate]:
    """Enumerate rf choices and co orders for fixed thread shapes."""
    # Global renumbering: threads in order, events in program order.
    offset: list[int] = []
    events: list[Event] = []
    threads: list[list[int]] = []
    for shape in shapes:
        offset.append(len(events))
        threads.append(list(range(len(events), len(events) + len(shape.events))))
        events.extend(shape.events)

    def glob(tid: int, local: int) -> int:
        return offset[tid] + local

    store_values: dict[int, int] = {}
    writes_by_loc: dict[str, list[int]] = {}
    for tid, shape in enumerate(shapes):
        for local, value in shape.store_values.items():
            store_values[glob(tid, local)] = value
    for eid, event in enumerate(events):
        if event.is_write:
            writes_by_loc.setdefault(event.loc, []).append(eid)

    reads: list[tuple[int, int, str]] = []  # (tid, global id, reg)
    for tid, shape in enumerate(shapes):
        for local, reg in shape.reads:
            reads.append((tid, glob(tid, local), reg))

    # Conditional aborts in committed transactions: the condition read
    # must observe zero, i.e. the initial value (store values are
    # non-zero by validation).
    condition_reads: list[int] = []
    for tid, shape in enumerate(shapes):
        condition_reads.extend(glob(tid, c) for c in shape.abort_conditions)

    deps = {"addr": [], "data": [], "ctrl": [], "rmw": []}
    txns: list[Transaction] = []
    for tid, shape in enumerate(shapes):
        for name in ("addr", "data", "ctrl", "rmw"):
            deps[name].extend(
                (glob(tid, a), glob(tid, b)) for a, b in getattr(shape, name)
            )
        for first, last, atomic in shape.txns:
            txns.append(
                Transaction(
                    tuple(range(glob(tid, first), glob(tid, last) + 1)), atomic
                )
            )

    committed = frozenset(
        (tid, idx)
        for tid, chosen in enumerate(committed_sets)
        for idx, ok in chosen.items()
        if ok
    )
    aborted = frozenset(
        (tid, idx)
        for tid, chosen in enumerate(committed_sets)
        for idx, ok in chosen.items()
        if not ok
    )

    rf_spaces = [
        [None] + writes_by_loc.get(events[r].loc, [])
        for _, r, _ in reads
    ]
    co_locs = [loc for loc, ws in writes_by_loc.items() if len(ws) > 1]
    co_spaces = [list(itertools.permutations(writes_by_loc[loc])) for loc in co_locs]

    nonempty_threads = [t for t in threads if t]
    for rf_choice in itertools.product(*rf_spaces):
        rf = {
            r: w
            for (_, r, _), w in zip(reads, rf_choice)
            if w is not None
        }
        if any(c in rf for c in condition_reads):
            continue  # a committed transaction's abort would have fired
        for co_choice in itertools.product(*co_spaces):
            co = {loc: order for loc, order in zip(co_locs, co_choice)}
            for loc, ws in writes_by_loc.items():
                if len(ws) == 1:
                    co[loc] = tuple(ws)
            execution = Execution(
                events=events,
                threads=nonempty_threads,
                rf=rf,
                co=co,
                addr=deps["addr"],
                data=deps["data"],
                ctrl=deps["ctrl"],
                rmw=deps["rmw"],
                txns=txns,
            )
            registers = {
                (tid, reg): (store_values[rf[r]] if r in rf else 0)
                for tid, r, reg in reads
            }
            memory = {
                loc: store_values[order[-1]]
                for loc, order in co.items()
                if order
            }
            write_orders = {
                loc: tuple(store_values[w] for w in order)
                for loc, order in co.items()
                if order
            }
            outcome = Outcome(
                registers=registers,
                memory=memory,
                committed=committed,
                aborted=aborted,
                write_orders=write_orders,
            )
            yield Candidate(execution, outcome)


def observable(test: LitmusTest, model: MemoryModel) -> bool:
    """Can ``test``'s postcondition be satisfied under ``model``?

    This is the axiomatic analogue of running the test on hardware: the
    test is observable iff some consistent candidate execution satisfies
    the postcondition.
    """
    for candidate in candidate_executions(test.program):
        if test.check(candidate.outcome) and model.consistent(candidate.execution):
            return True
    return False


def all_outcomes(test: LitmusTest, model: MemoryModel) -> set[tuple]:
    """All final states reachable under ``model`` (as hashable keys)."""
    out: set[tuple] = set()
    for candidate in candidate_executions(test.program):
        if model.consistent(candidate.execution):
            out.add(candidate.outcome.key())
    return out
