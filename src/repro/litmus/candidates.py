"""Expand a litmus program into its candidate executions.

This is the front half of a herd-style axiomatic checker (the paper's
"candidate executions of a program are obtained by assuming a
non-deterministic memory system", section 2): every load may observe any
same-location store or the initial value, every location's stores are
ordered arbitrarily by coherence, and every transaction independently
commits or aborts (an aborted transaction's events vanish, section 3.1).

The enumeration is an *incremental constraint-pruned search* rather than
a materialised cross-product:

* per-shape work (global renumbering, dependency/transaction lifting,
  write indexes, per-location permutation tables) is hoisted out of the
  rf × co loops;
* every candidate carries a ``coherent`` bit — the classic uniproc
  patterns (coWW/coRW/coWR/coRR) are detected incrementally while rf is
  assigned, which is exactly ``acyclic(po_loc ∪ com)``.  Consumers
  checking a model that :attr:`~repro.models.base.MemoryModel.
  enforces_coherence` skip the full axiom sweep for incoherent
  candidates; ``coherent_only=True`` prunes them *before* an
  ``Execution`` is even built;
* :func:`expand_test` threads a litmus test's postcondition through the
  search: commit choices contradicting ``TxnOk`` atoms, rf choices
  contradicting register atoms, and co permutations contradicting final
  -memory/coherence-sequence atoms are pruned at their loop level, so
  the permutations of locations the postcondition cannot distinguish
  are never expanded for failing branches.

:func:`observable` then answers the question the Litmus tool answers on
hardware: can this test's postcondition be satisfied under a given
model?  :func:`brute_force_candidates` retains the original
cross-product enumerator as the oracle for the randomized equivalence
suite (``tests/test_equivalence.py``).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterator

from ..obs import trace
from ..core.events import Event, EventKind, Label
from ..core.execution import Execution, Transaction
from ..models.base import MemoryModel
from .program import (
    CtrlBranch,
    Fence,
    Load,
    Program,
    Store,
    TxAbort,
    TxBegin,
    TxEnd,
)
from .test import CoSeq, LitmusTest, MemEq, Outcome, RegEq, TxnOk

__all__ = [
    "Candidate",
    "candidate_executions",
    "expand_program",
    "expand_test",
    "brute_force_candidates",
    "brute_force_forall",
    "brute_force_observable",
    "brute_force_outcomes",
    "observable",
    "forall_holds",
    "all_outcomes",
    "set_batch_size",
    "set_expansion_cache_limit",
]


# ----------------------------------------------------------------------
# Batched checking knobs
# ----------------------------------------------------------------------

#: Default chunk size for the batched consistency path.  Streams shorter
#: than this degenerate to one whole-stream batch; 0 (or 1) falls back
#: to the scalar per-candidate path everywhere.
DEFAULT_BATCH_SIZE = 64

_BATCH_OVERRIDE: int | None = None


def set_batch_size(size: "int | None") -> None:
    """Set the candidate chunk size for batched checking.

    ``0`` (or ``1``) selects the scalar per-candidate path; ``None``
    restores the default (the ``REPRO_BATCH`` environment variable,
    else :data:`DEFAULT_BATCH_SIZE`).  The CLI's ``--batch`` flag and
    the differential tests route through here.
    """
    global _BATCH_OVERRIDE
    if size is not None and size < 0:
        raise ValueError(f"batch size must be >= 0, got {size}")
    _BATCH_OVERRIDE = size


def batch_size() -> int:
    """The effective candidate chunk size (see :func:`set_batch_size`)."""
    if _BATCH_OVERRIDE is not None:
        return _BATCH_OVERRIDE
    raw = os.environ.get("REPRO_BATCH")
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_BATCH_SIZE


@dataclass(frozen=True)
class Candidate:
    """One candidate execution of a program plus its final state.

    ``coherent`` records whether the execution satisfies per-location
    coherence (``acyclic(po_loc ∪ com)``), determined for free during
    the incremental enumeration.
    """

    execution: Execution
    outcome: Outcome
    coherent: bool = True


@dataclass
class _ThreadShape:
    """Per-thread expansion state for one commit/abort choice."""

    events: list[Event]
    regs: dict[str, int]  # register -> defining load event (thread-local id)
    reads: list[tuple[int, str]]  # (local event id, dst register)
    store_values: dict[int, int]  # local event id -> stored value
    addr: list[tuple[int, int]]
    data: list[tuple[int, int]]
    ctrl: list[tuple[int, int]]
    rmw: list[tuple[int, int]]
    txns: list[tuple[int, int, bool]]  # (first, last, atomic) local ids
    #: Commit feasibility conditions from conditional TxAborts inside
    #: *committed* transactions: (local read event id, required value is
    #: zero).  A committed transaction means no abort fired, so every
    #: condition register must have read zero.
    abort_conditions: list[int]


def _expand_thread(
    thread: tuple, committed: dict[int, bool]
) -> _ThreadShape | None:
    """Expand one thread given commit decisions for its transactions.

    Returns ``None`` if a transaction chosen as committed contains an
    unconditional ``TxAbort`` — that choice is infeasible (Remark 7.1:
    such a transaction never succeeds).

    A register whose *only* definition sits inside an aborted
    transaction is rolled back with it (the operational machines restore
    the register snapshot, section 3.1: an aborted transaction's events
    vanish): later uses read the pre-transaction definition if one
    exists, else the initial value 0 — and induce no dependency edge,
    since the defining load event does not exist in this candidate.
    """
    shape = _ThreadShape([], {}, [], {}, [], [], [], [], [], [])
    pending_ctrl: list[int] = []  # defining loads of all open branches
    open_excl: dict[str, int] = {}  # loc -> unpaired exclusive load
    txn_counter = -1
    in_txn = False
    txn_start = 0
    txn_atomic = False
    skipping = False

    for instr in thread:
        if isinstance(instr, TxBegin):
            txn_counter += 1
            if committed[txn_counter]:
                in_txn = True
                txn_atomic = instr.atomic
                txn_start = len(shape.events)
            else:
                skipping = True
            continue
        if isinstance(instr, TxEnd):
            if skipping:
                skipping = False
            elif in_txn:
                in_txn = False
                if len(shape.events) > txn_start:
                    shape.txns.append(
                        (txn_start, len(shape.events) - 1, txn_atomic)
                    )
            continue
        if skipping:
            continue
        if isinstance(instr, TxAbort):
            if not in_txn:
                continue
            if instr.reg is None:
                return None  # committed choice is infeasible
            if instr.reg in shape.regs:
                shape.abort_conditions.append(shape.regs[instr.reg])
            # A rolled-back condition register reads 0: the abort never
            # fires, so a committed choice needs no extra condition.
            continue
        if isinstance(instr, CtrlBranch):
            for reg in instr.regs:
                if reg in shape.regs:
                    pending_ctrl.append(shape.regs[reg])
            continue
        if isinstance(instr, Fence):
            eid = len(shape.events)
            shape.events.append(Event(EventKind.FENCE, None, frozenset({instr.kind})))
            shape.ctrl.extend((src, eid) for src in pending_ctrl)
            continue
        if isinstance(instr, Load):
            eid = len(shape.events)
            labels = set(instr.labels)
            if instr.excl:
                labels.add(Label.EXCL)
            shape.events.append(Event(EventKind.READ, instr.loc, frozenset(labels)))
            shape.addr.extend(
                (shape.regs[r], eid) for r in instr.addr_dep if r in shape.regs
            )
            shape.regs[instr.dst] = eid
            shape.reads.append((eid, instr.dst))
            shape.ctrl.extend((src, eid) for src in pending_ctrl)
            if instr.excl:
                open_excl[instr.loc] = eid
            continue
        if isinstance(instr, Store):
            eid = len(shape.events)
            labels = set(instr.labels)
            if instr.excl:
                labels.add(Label.EXCL)
            shape.events.append(Event(EventKind.WRITE, instr.loc, frozenset(labels)))
            shape.store_values[eid] = instr.value
            shape.data.extend(
                (shape.regs[r], eid) for r in instr.data_dep if r in shape.regs
            )
            shape.addr.extend(
                (shape.regs[r], eid) for r in instr.addr_dep if r in shape.regs
            )
            shape.ctrl.extend((src, eid) for src in pending_ctrl)
            if instr.excl and instr.loc in open_excl:
                shape.rmw.append((open_excl.pop(instr.loc), eid))
            continue
        raise TypeError(f"unknown instruction {instr!r}")
    return shape


def _txn_counts(program: Program) -> list[int]:
    return [
        sum(isinstance(i, TxBegin) for i in thread) for thread in program.threads
    ]


# ----------------------------------------------------------------------
# Replayable, bounded candidate streams
# ----------------------------------------------------------------------

#: Candidates retained per stream before falling through to
#: re-enumeration (``REPRO_EXPANSION_CACHE`` overrides).
_DEFAULT_CACHE_LIMIT = 20_000

_cache_limit = int(
    os.environ.get("REPRO_EXPANSION_CACHE", _DEFAULT_CACHE_LIMIT)
)


def set_expansion_cache_limit(limit: int) -> int:
    """Set the per-stream candidate retention cap; returns the old cap.

    Streams retain at most this many candidates for replay by later
    consumers (the same test checked against another model).  Beyond the
    cap, iteration falls through to re-enumeration, so huge tests cannot
    pin their full candidate set in memory via the expansion memos.
    """
    global _cache_limit
    old = _cache_limit
    _cache_limit = int(limit)
    return old


class _LazyExpansion:
    """A replayable view of one candidate stream.

    Candidates are pulled from the underlying enumerator on demand and
    retained (up to the cache limit), so early-exiting consumers
    (:func:`observable` stops at the first witness) pay only for the
    prefix they visit, while later consumers — the same test checked
    against another model — replay the retained prefix instead of
    re-enumerating.  Past the limit each consumer re-enumerates its own
    tail from the deterministic source, trading CPU for bounded memory.
    """

    def __init__(self, factory: Callable[[], Iterator[Candidate]]) -> None:
        self._factory = factory
        self._source = factory()
        self._seen: list[Candidate] = []
        self._done = False

    def _pull(self) -> None:
        """Advance the shared source by one candidate into ``_seen``."""
        self._seen.append(_next_profiled(self._source))

    def __iter__(self) -> Iterator[Candidate]:
        i = 0
        while True:
            if i < len(self._seen):
                yield self._seen[i]
                i += 1
            elif self._done:
                return
            elif len(self._seen) >= _cache_limit:
                # Retention cap reached (read dynamically, so lowering
                # the limit also bounds already-memoized streams): this
                # consumer re-enumerates its own tail — the source is
                # deterministic.
                tail = itertools.islice(self._factory(), i, None)
                while True:
                    try:
                        yield _next_profiled(tail)
                    except StopIteration:
                        return
            else:
                try:
                    self._pull()
                except StopIteration:
                    self._done = True


def _next_profiled(source: Iterator[Candidate]) -> Candidate:
    """``next(source)`` attributed to the ``expansion`` profiling stage."""
    if trace.ACTIVE is not None:
        with trace.stage("expansion"):
            item = next(source)
        trace.count("candidates")
        return item
    return next(source)


def candidate_executions(
    program: Program, coherent_only: bool = False
) -> Iterator[Candidate]:
    """Yield every candidate execution of ``program``.

    Expansion is memoized per program (see :func:`expand_program`), so
    checking the same test against many models — the campaign engine's
    cross-product, repeated :func:`observable` calls — enumerates once.
    The stream stays lazy: consumers that stop early (a postcondition
    witnessed by the first candidate) never force the full expansion.

    ``coherent_only=True`` prunes candidates violating per-location
    coherence during the search (sound for any consumer whose model
    enforces the Coherence axiom — all of the paper's models do).
    """
    return iter(expand_program(program, coherent_only))


@lru_cache(maxsize=256)
def _expand_program_cached(
    program: Program, coherent_only: bool
) -> _LazyExpansion:
    return _LazyExpansion(
        lambda: _enumerate_candidates(program, coherent_only=coherent_only)
    )


def expand_program(
    program: Program, coherent_only: bool = False
) -> _LazyExpansion:
    """The memoized (lazily materialized) expansion of ``program``.

    ``Program`` is a frozen dataclass, so the cache key is structural:
    two syntactically identical tests share one expansion.  The cache is
    bounded; ``expand_program.cache_clear()`` resets it (tests use this).
    """
    # Normalize the argument shape so ``expand_program(p)`` and
    # ``candidate_executions(p)`` share one cache entry.
    return _expand_program_cached(program, bool(coherent_only))


expand_program.cache_clear = _expand_program_cached.cache_clear
expand_program.cache_info = _expand_program_cached.cache_info


def expand_test(
    test: LitmusTest, coherent_only: bool = False
) -> _LazyExpansion:
    """The memoized postcondition-filtered expansion of ``test``.

    The stream contains exactly the candidates whose outcome satisfies
    the test's postcondition, enumerated with the postcondition pushed
    into the search (see the module docstring), and is shared by every
    model the test is checked against.  The memo key is the (program,
    postcondition) pair — the only inputs expansion depends on.
    """
    return _expand_test(test.program, test.postcondition, coherent_only)


@lru_cache(maxsize=256)
def _expand_test(
    program: Program,
    postcondition: tuple,
    coherent_only: bool,
) -> _LazyExpansion:
    return _LazyExpansion(
        lambda: _enumerate_candidates(
            program, postcondition=postcondition, coherent_only=coherent_only
        )
    )


# ----------------------------------------------------------------------
# The incremental search
# ----------------------------------------------------------------------


def _enumerate_candidates(
    program: Program,
    postcondition: tuple | None = None,
    coherent_only: bool = False,
) -> Iterator[Candidate]:
    counts = _txn_counts(program)
    txn_atoms = (
        [a for a in postcondition if isinstance(a, TxnOk)]
        if postcondition
        else []
    )
    for atom in txn_atoms:
        if atom.tid >= len(counts) or atom.index >= counts[atom.tid]:
            return  # the transaction never exists: unsatisfiable
    commit_spaces = [
        list(itertools.product([True, False], repeat=c)) for c in counts
    ]
    for commit_choice in itertools.product(*commit_spaces):
        committed_sets = [
            {i: ok for i, ok in enumerate(choices)} for choices in commit_choice
        ]
        # TxnOk atoms are decided entirely by the commit choice: prune
        # contradicting choices before expanding any thread.
        if any(
            committed_sets[a.tid][a.index] != a.ok for a in txn_atoms
        ):
            continue
        shapes = [
            _expand_thread(thread, committed_sets[tid])
            for tid, thread in enumerate(program.threads)
        ]
        if any(shape is None for shape in shapes):
            continue  # a committed transaction aborts unconditionally
        yield from _expand_memory(
            program, shapes, committed_sets, postcondition=postcondition,
            coherent_only=coherent_only,
        )


def _coww_ok(order: tuple[int, ...], thread_of: list[int]) -> bool:
    """True iff a coherence order agrees with po on same-thread writes
    (ids within a thread are po-ordered by construction)."""
    last: dict[int, int] = {}
    for w in order:
        tid = thread_of[w]
        prev = last.get(tid)
        if prev is not None and prev > w:
            return False
        last[tid] = w
    return True


def _expand_memory(
    program: Program,
    shapes: list[_ThreadShape],
    committed_sets: list[dict[int, bool]],
    postcondition: tuple | None = None,
    coherent_only: bool = False,
) -> Iterator[Candidate]:
    """Incrementally enumerate rf choices and co orders for fixed shapes.

    All shape-level structure is hoisted; rf is assigned read by read
    with the uniproc coherence patterns checked against the chosen co,
    and postcondition atoms are applied at the outermost loop level that
    decides them.
    """
    # -- global renumbering: threads in order, events in program order --
    offset: list[int] = []
    events: list[Event] = []
    threads: list[list[int]] = []
    thread_of: list[int] = []
    for tid, shape in enumerate(shapes):
        offset.append(len(events))
        threads.append(list(range(len(events), len(events) + len(shape.events))))
        events.extend(shape.events)
        thread_of.extend([tid] * len(shape.events))

    def glob(tid: int, local: int) -> int:
        return offset[tid] + local

    store_values: dict[int, int] = {}
    writes_by_loc: dict[str, list[int]] = {}
    for tid, shape in enumerate(shapes):
        for local, value in shape.store_values.items():
            store_values[glob(tid, local)] = value
    for eid, event in enumerate(events):
        if event.is_write:
            writes_by_loc.setdefault(event.loc, []).append(eid)

    reads: list[tuple[int, int, str]] = []  # (tid, global id, reg)
    for tid, shape in enumerate(shapes):
        for local, reg in shape.reads:
            reads.append((tid, glob(tid, local), reg))

    # Conditional aborts in committed transactions: the condition read
    # must observe zero, i.e. the initial value (store values are
    # non-zero by validation) — its rf space collapses to {init}.
    condition_reads: set[int] = set()
    for tid, shape in enumerate(shapes):
        condition_reads.update(glob(tid, c) for c in shape.abort_conditions)

    deps = {"addr": [], "data": [], "ctrl": [], "rmw": []}
    txns: list[Transaction] = []
    for tid, shape in enumerate(shapes):
        for name in ("addr", "data", "ctrl", "rmw"):
            deps[name].extend(
                (glob(tid, a), glob(tid, b)) for a, b in getattr(shape, name)
            )
        for first, last, atomic in shape.txns:
            txns.append(
                Transaction(
                    tuple(range(glob(tid, first), glob(tid, last) + 1)), atomic
                )
            )

    committed = frozenset(
        (tid, idx)
        for tid, chosen in enumerate(committed_sets)
        for idx, ok in chosen.items()
        if ok
    )
    aborted = frozenset(
        (tid, idx)
        for tid, chosen in enumerate(committed_sets)
        for idx, ok in chosen.items()
        if not ok
    )

    # -- postcondition atoms decided by this shape -----------------------
    reg_atoms: dict[tuple[int, str], int] = {}
    mem_atoms: dict[str, int] = {}
    coseq_atoms: dict[str, tuple[int, ...]] = {}
    if postcondition is not None:
        for atom in postcondition:
            if isinstance(atom, RegEq):
                want = reg_atoms.setdefault((atom.tid, atom.reg), atom.value)
                if want != atom.value:
                    return  # contradictory conjunction
            elif isinstance(atom, MemEq):
                want = mem_atoms.setdefault(atom.loc, atom.value)
                if want != atom.value:
                    return
            elif isinstance(atom, CoSeq):
                want = coseq_atoms.setdefault(atom.loc, atom.values)
                if want != atom.values:
                    return
        # Registers never defined in this shape stay 0.
        defined = {(tid, reg) for tid, _, reg in reads}
        for key, value in reg_atoms.items():
            if key not in defined and value != 0:
                return
        # Locations with fewer than two writes have a fixed final state.
        for loc, value in mem_atoms.items():
            ws = writes_by_loc.get(loc, [])
            if len(ws) < 2:
                final = store_values[ws[0]] if ws else 0
                if final != value:
                    return
        for loc, values in coseq_atoms.items():
            ws = writes_by_loc.get(loc, [])
            if len(ws) < 2:
                fixed = tuple(store_values[w] for w in ws)
                if fixed != values:
                    return

    # -- rf spaces, statically restricted --------------------------------
    last_def: dict[tuple[int, str], int] = {}
    for i, (tid, _, reg) in enumerate(reads):
        last_def[(tid, reg)] = i

    rf_spaces: list[list[int | None]] = []
    for i, (tid, gid, reg) in enumerate(reads):
        if gid in condition_reads:
            space: list[int | None] = [None]
        else:
            space = [None] + writes_by_loc.get(events[gid].loc, [])
        want = reg_atoms.get((tid, reg))
        if want is not None and last_def[(tid, reg)] == i:
            space = [
                w
                for w in space
                if (0 if w is None else store_values[w]) == want
            ]
        if not space:
            return
        rf_spaces.append(space)

    # -- per-read structure for the uniproc coherence patterns -----------
    read_loc = [events[gid].loc for _, gid, _ in reads]
    #: same-thread same-location writes po-before / po-after each read
    writes_before: list[list[int]] = []
    writes_after: list[list[int]] = []
    #: po-earlier same-thread same-location reads (indices into reads)
    prev_reads: list[list[int]] = []
    for i, (tid, gid, _) in enumerate(reads):
        ws = writes_by_loc.get(read_loc[i], [])
        writes_before.append(
            [w for w in ws if thread_of[w] == tid and w < gid]
        )
        writes_after.append(
            [w for w in ws if thread_of[w] == tid and w > gid]
        )
        prev_reads.append(
            [
                j
                for j in range(i)
                if reads[j][0] == tid and read_loc[j] == read_loc[i]
            ]
        )

    # -- co permutation tables, postcondition- and coWW-annotated --------
    base_co = {
        loc: (ws[0],) for loc, ws in writes_by_loc.items() if len(ws) == 1
    }
    co_locs = [loc for loc, ws in writes_by_loc.items() if len(ws) > 1]
    co_tables: list[list[tuple[tuple[int, ...], bool]]] = []
    for loc in co_locs:
        table = []
        mem_want = mem_atoms.get(loc)
        seq_want = coseq_atoms.get(loc)
        for perm in itertools.permutations(writes_by_loc[loc]):
            if mem_want is not None and store_values[perm[-1]] != mem_want:
                continue
            if seq_want is not None and (
                tuple(store_values[w] for w in perm) != seq_want
            ):
                continue
            ok = _coww_ok(perm, thread_of)
            if coherent_only and not ok:
                continue
            table.append((perm, ok))
        if not table:
            return
        co_tables.append(table)

    # -- structure shared by every candidate -----------------------------
    events_t = tuple(events)
    nonempty_threads = tuple(t for t in threads if t)
    addr_fs = frozenset(deps["addr"])
    data_fs = frozenset(deps["data"])
    ctrl_fs = frozenset(deps["ctrl"])
    rmw_fs = frozenset(deps["rmw"])
    txns_t = tuple(txns)
    n_reads = len(reads)
    chosen: list[int | None] = [None] * n_reads

    for co_sel in itertools.product(*co_tables):
        co: dict[str, tuple[int, ...]] = dict(base_co)
        co_ok = True
        copos: dict[int, int] = {}
        for loc, (perm, ok) in zip(co_locs, co_sel):
            co[loc] = perm
            co_ok = co_ok and ok
            for pos, w in enumerate(perm):
                copos[w] = pos
        for loc, order in base_co.items():
            copos[order[0]] = 0

        memory = {
            loc: store_values[order[-1]] for loc, order in co.items()
        }
        write_orders = {
            loc: tuple(store_values[w] for w in order)
            for loc, order in co.items()
        }

        # Incremental rf assignment with per-read coherence checks
        # against the chosen co.
        def assign(i: int, ok_prefix: bool) -> Iterator[Candidate]:
            if i == n_reads:
                rf = {
                    reads[j][1]: w
                    for j, w in enumerate(chosen)
                    if w is not None
                }
                execution = Execution(
                    events=events_t,
                    threads=nonempty_threads,
                    rf=rf,
                    co=co,
                    addr=addr_fs,
                    data=data_fs,
                    ctrl=ctrl_fs,
                    rmw=rmw_fs,
                    txns=txns_t,
                )
                registers = {
                    (tid, reg): (
                        store_values[chosen[j]]
                        if chosen[j] is not None
                        else 0
                    )
                    for j, (tid, _, reg) in enumerate(reads)
                }
                outcome = Outcome(
                    registers=registers,
                    memory=memory,
                    committed=committed,
                    aborted=aborted,
                    write_orders=write_orders,
                )
                # The atom-level pruning above is exhaustive; this final
                # check is a cheap guard so the filtered stream can never
                # over-approximate the postcondition.
                if postcondition is None or all(
                    outcome.satisfies(atom) for atom in postcondition
                ):
                    yield Candidate(execution, outcome, coherent=ok_prefix)
                return
            tid, gid, _ = reads[i]
            for w in rf_spaces[i]:
                ok = ok_prefix
                if ok:
                    if w is None:
                        # coWR-init: a same-thread write was overtaken.
                        if writes_before[i]:
                            ok = False
                        else:
                            # coRR-init: an earlier read saw a write.
                            for j in prev_reads[i]:
                                if chosen[j] is not None:
                                    ok = False
                                    break
                    else:
                        pos = copos[w]
                        # coRW1: reading a po-later same-thread write.
                        if thread_of[w] == tid and w > gid:
                            ok = False
                        if ok:
                            # coWR: a po-earlier same-thread write is
                            # co-after the write being read.
                            for wb in writes_before[i]:
                                if copos[wb] > pos:
                                    ok = False
                                    break
                        if ok:
                            # coRW2: a po-later same-thread write is
                            # co-before the write being read.
                            for wa in writes_after[i]:
                                if copos[wa] < pos:
                                    ok = False
                                    break
                        if ok:
                            # coRR: same-thread reads observing writes
                            # against the coherence order.
                            for j in prev_reads[i]:
                                wj = chosen[j]
                                if wj is not None and copos[wj] > pos:
                                    ok = False
                                    break
                if coherent_only and not ok:
                    continue
                chosen[i] = w
                yield from assign(i + 1, ok)
            chosen[i] = None

        yield from assign(0, co_ok)


# ----------------------------------------------------------------------
# Reference brute-force enumerator (kept as the equivalence oracle)
# ----------------------------------------------------------------------


def brute_force_candidates(program: Program) -> Iterator[Candidate]:
    """The original materialised rf × co cross-product, unpruned.

    Kept as the reference semantics: the randomized equivalence suite
    asserts the incremental search yields exactly this candidate set
    (as execution signatures and outcomes).  The ``coherent`` bit is
    computed from first principles here.
    """
    counts = _txn_counts(program)
    commit_spaces = [
        list(itertools.product([True, False], repeat=c)) for c in counts
    ]
    for commit_choice in itertools.product(*commit_spaces):
        committed_sets = [
            {i: ok for i, ok in enumerate(choices)} for choices in commit_choice
        ]
        shapes = [
            _expand_thread(thread, committed_sets[tid])
            for tid, thread in enumerate(program.threads)
        ]
        if any(shape is None for shape in shapes):
            continue
        offset: list[int] = []
        events: list[Event] = []
        threads: list[list[int]] = []
        for shape in shapes:
            offset.append(len(events))
            threads.append(
                list(range(len(events), len(events) + len(shape.events)))
            )
            events.extend(shape.events)

        store_values: dict[int, int] = {}
        writes_by_loc: dict[str, list[int]] = {}
        for tid, shape in enumerate(shapes):
            for local, value in shape.store_values.items():
                store_values[offset[tid] + local] = value
        for eid, event in enumerate(events):
            if event.is_write:
                writes_by_loc.setdefault(event.loc, []).append(eid)

        reads: list[tuple[int, int, str]] = []
        for tid, shape in enumerate(shapes):
            for local, reg in shape.reads:
                reads.append((tid, offset[tid] + local, reg))

        condition_reads = [
            offset[tid] + c
            for tid, shape in enumerate(shapes)
            for c in shape.abort_conditions
        ]

        deps = {"addr": [], "data": [], "ctrl": [], "rmw": []}
        txns: list[Transaction] = []
        for tid, shape in enumerate(shapes):
            for name in ("addr", "data", "ctrl", "rmw"):
                deps[name].extend(
                    (offset[tid] + a, offset[tid] + b)
                    for a, b in getattr(shape, name)
                )
            for first, last, atomic in shape.txns:
                txns.append(
                    Transaction(
                        tuple(
                            range(offset[tid] + first, offset[tid] + last + 1)
                        ),
                        atomic,
                    )
                )

        committed = frozenset(
            (tid, idx)
            for tid, chosen in enumerate(committed_sets)
            for idx, ok in chosen.items()
            if ok
        )
        aborted = frozenset(
            (tid, idx)
            for tid, chosen in enumerate(committed_sets)
            for idx, ok in chosen.items()
            if not ok
        )

        rf_spaces = [
            [None] + writes_by_loc.get(events[r].loc, [])
            for _, r, _ in reads
        ]
        co_locs = [loc for loc, ws in writes_by_loc.items() if len(ws) > 1]
        co_spaces = [
            list(itertools.permutations(writes_by_loc[loc])) for loc in co_locs
        ]

        nonempty_threads = [t for t in threads if t]
        for rf_choice in itertools.product(*rf_spaces):
            rf = {
                r: w
                for (_, r, _), w in zip(reads, rf_choice)
                if w is not None
            }
            if any(c in rf for c in condition_reads):
                continue  # a committed transaction's abort would have fired
            for co_choice in itertools.product(*co_spaces):
                co = {loc: order for loc, order in zip(co_locs, co_choice)}
                for loc, ws in writes_by_loc.items():
                    if len(ws) == 1:
                        co[loc] = tuple(ws)
                execution = Execution(
                    events=events,
                    threads=nonempty_threads,
                    rf=rf,
                    co=co,
                    addr=deps["addr"],
                    data=deps["data"],
                    ctrl=deps["ctrl"],
                    rmw=deps["rmw"],
                    txns=txns,
                )
                registers = {
                    (tid, reg): (store_values[rf[r]] if r in rf else 0)
                    for tid, r, reg in reads
                }
                memory = {
                    loc: store_values[order[-1]]
                    for loc, order in co.items()
                    if order
                }
                write_orders = {
                    loc: tuple(store_values[w] for w in order)
                    for loc, order in co.items()
                    if order
                }
                outcome = Outcome(
                    registers=registers,
                    memory=memory,
                    committed=committed,
                    aborted=aborted,
                    write_orders=write_orders,
                )
                coherent = (execution.po_loc | execution.com).is_acyclic()
                yield Candidate(execution, outcome, coherent=coherent)


def brute_force_observable(test: LitmusTest, model: MemoryModel) -> bool:
    """Reference :func:`observable`, enumerated by brute force.

    This walks the unpruned, unmemoized cross-product and applies the
    postcondition and the model *after* the fact, so it shares nothing
    with the incremental search — the differential fuzzer uses it as the
    ground-truth oracle for enumeration splits, and the randomized
    equivalence suite as its reference semantics.
    """
    exists = _brute_force_exists(
        test.program, model, lambda c: test.check(c.outcome)
    )
    if exists is not None:
        return exists
    return any(
        test.check(c.outcome) and model.consistent(c.execution)
        for c in brute_force_candidates(test.program)
    )


def _brute_force_exists(program, model, want) -> "bool | None":
    """Batched "does a consistent candidate satisfying ``want`` exist?",
    or ``None`` when batching is off or the model is not batchable.

    The enumeration stays the unpruned, unmemoized cross-product; only
    the per-candidate ``model.consistent`` calls are chunked through the
    compiled plans (early-exiting between chunks), so the oracle still
    shares nothing with the incremental search it cross-checks.
    """
    size = batch_size()
    definition = model.batch_definition() if size > 1 else None
    if definition is None:
        return None
    from ..ir.plan import consistent_batch as _ir_consistent_batch

    buckets: dict[int, list[Execution]] = {}

    def flush(n: int) -> bool:
        return any(_ir_consistent_batch(model, definition, buckets.pop(n)))

    for c in brute_force_candidates(program):
        if not want(c):
            continue
        n = c.execution.n
        bucket = buckets.setdefault(n, [])
        bucket.append(c.execution)
        if len(bucket) >= size and flush(n):
            return True
    return any(flush(n) for n in list(buckets))


def brute_force_outcomes(test: LitmusTest, model: MemoryModel) -> set[tuple]:
    """Reference :func:`all_outcomes`, enumerated by brute force."""
    size = batch_size()
    definition = model.batch_definition() if size > 1 else None
    if definition is None:
        return {
            c.outcome.key()
            for c in brute_force_candidates(test.program)
            if model.consistent(c.execution)
        }
    from ..ir.plan import consistent_batch as _ir_consistent_batch

    out: set[tuple] = set()
    buckets: dict[int, list[Candidate]] = {}

    def flush(n: int) -> None:
        bucket = buckets.pop(n)
        flags = _ir_consistent_batch(
            model, definition, [c.execution for c in bucket]
        )
        out.update(
            c.outcome.key() for c, flag in zip(bucket, flags) if flag
        )

    for c in brute_force_candidates(test.program):
        n = c.execution.n
        bucket = buckets.setdefault(n, [])
        bucket.append(c)
        if len(bucket) >= size:
            flush(n)
    for n in list(buckets):
        flush(n)
    return out


def brute_force_forall(test: LitmusTest, model: MemoryModel) -> bool:
    """Reference :func:`forall_holds`, enumerated by brute force."""
    refuted = _brute_force_exists(
        test.program, model, lambda c: not test.check(c.outcome)
    )
    if refuted is not None:
        return not refuted
    return all(
        test.check(c.outcome)
        for c in brute_force_candidates(test.program)
        if model.consistent(c.execution)
    )


# ----------------------------------------------------------------------
# Consumers
# ----------------------------------------------------------------------


#: Bound on the per-sweep verdict memo: past this the memo resets, so a
#: huge test cannot pin every distinct candidate (and its attached
#: analysis) in memory — mirroring the expansion retention cap.
_VERDICT_MEMO_LIMIT = 1 << 12


def _consistent_stream(
    candidates: Iterator[Candidate],
    model: MemoryModel,
    skip: Callable[[Candidate], bool] | None = None,
) -> Iterator[Candidate]:
    """The candidates of ``candidates`` consistent under ``model``.

    The single home of the coherence gate (models declaring
    :attr:`~repro.models.base.MemoryModel.enforces_coherence` never see
    incoherent candidates) and the bounded signature-keyed verdict memo
    (structurally identical candidates are checked once per sweep).
    ``skip`` drops candidates *before* the model runs — used by
    :func:`forall_holds` to avoid consistency checks on candidates that
    cannot decide the verdict.
    """
    size = batch_size()
    if size > 1:
        definition = model.batch_definition()
        if definition is not None:
            yield from _batched_consistent_stream(
                candidates, model, definition, skip, size
            )
            return
    coherence_gate = getattr(model, "enforces_coherence", False)
    verdicts: dict[Execution, bool] = {}
    for candidate in candidates:
        if coherence_gate and not candidate.coherent:
            continue  # never consistent under this model
        if skip is not None and skip(candidate):
            continue
        verdict = verdicts.get(candidate.execution)
        if verdict is None:
            verdict = model.consistent(candidate.execution)
            if len(verdicts) >= _VERDICT_MEMO_LIMIT:
                verdicts.clear()
            verdicts[candidate.execution] = verdict
        if verdict:
            yield candidate


def _batched_consistent_stream(
    candidates: Iterator[Candidate],
    model: MemoryModel,
    definition,
    skip: Callable[[Candidate], bool] | None,
    size: int,
) -> Iterator[Candidate]:
    """The batched body of :func:`_consistent_stream`.

    Candidates are buffered into per-universe-size chunks (one test's
    commit choices yield different event counts, and a batch shares one
    bit-matrix shape) and each full chunk is checked with one compiled
    plan sweep; the stream early-exits *between* chunks, so a consumer
    like :func:`observable` stops enumerating after the chunk containing
    its witness.  The coherence gate, the ``skip`` callback, and the
    bounded verdict memo behave exactly as in the scalar path; only the
    yield order may differ (chunks group same-sized candidates), which
    no consumer observes — they ask for existence or collect sets.
    """
    from ..ir.plan import consistent_batch as _ir_consistent_batch

    coherence_gate = getattr(model, "enforces_coherence", False)
    verdicts: dict[Execution, bool] = {}
    buckets: dict[int, list[Candidate]] = {}

    def flush(n: int) -> Iterator[Candidate]:
        bucket = buckets.pop(n)
        stack: list[Execution] = []
        index: dict[Execution, int] = {}
        for candidate in bucket:
            x = candidate.execution
            if x not in index:
                index[x] = len(stack)
                stack.append(x)
        flags = _ir_consistent_batch(model, definition, stack)
        if len(verdicts) + len(stack) > _VERDICT_MEMO_LIMIT:
            verdicts.clear()
        for x, flag in zip(stack, flags):
            verdicts[x] = bool(flag)
        for candidate in bucket:
            if flags[index[candidate.execution]]:
                yield candidate

    for candidate in candidates:
        if coherence_gate and not candidate.coherent:
            continue
        if skip is not None and skip(candidate):
            continue
        verdict = verdicts.get(candidate.execution)
        if verdict is not None:
            if verdict:
                yield candidate
            continue
        n = candidate.execution.n
        bucket = buckets.setdefault(n, [])
        bucket.append(candidate)
        if len(bucket) >= size:
            yield from flush(n)
    for n in list(buckets):
        yield from flush(n)


def observable(test: LitmusTest, model: MemoryModel) -> bool:
    """Can ``test``'s postcondition be satisfied under ``model``?

    This is the axiomatic analogue of running the test on hardware: the
    test is observable iff some consistent candidate execution satisfies
    the postcondition.

    The candidate stream is postcondition-filtered during enumeration
    (shared by every model checking the same test); when the model
    declares :attr:`~repro.models.base.MemoryModel.enforces_coherence`,
    incoherent candidates are pruned before executions are built.
    """
    coherent_only = getattr(model, "enforces_coherence", False)
    stream = _consistent_stream(expand_test(test, coherent_only), model)
    return next(iter(stream), None) is not None


def forall_holds(test: LitmusTest, model: MemoryModel) -> bool:
    """Does every consistent candidate satisfy ``test``'s postcondition?

    This is herd7's ``forall`` condition semantics: the quantifier
    ranges over the final states the model admits.  The candidate
    stream cannot be postcondition-filtered here (a *failing* candidate
    is exactly what decides the verdict); candidates that already
    satisfy the postcondition skip the model entirely.
    """
    refuting = _consistent_stream(
        candidate_executions(test.program),
        model,
        skip=lambda c: test.check(c.outcome),
    )
    return next(iter(refuting), None) is None


def all_outcomes(test: LitmusTest, model: MemoryModel) -> set[tuple]:
    """All final states reachable under ``model`` (as hashable keys)."""
    return {
        candidate.outcome.key()
        for candidate in _consistent_stream(
            candidate_executions(test.program), model
        )
    }
