"""Command-line interface: ``python -m repro <command>`` or ``repro``.

Commands:

* ``check <entry> [--model M]`` — check a catalogued execution;
* ``litmus <entry> --arch A`` — render a catalogued execution as a
  litmus test in the architecture's surface syntax;
* ``run <file> [--model M | --hw]`` — run a litmus test against a
  model or the simulated hardware.  The format is auto-detected by
  header: the neutral format or any herd-style dialect (``X86``,
  ``AArch64``, ``PPC``, ``RISCV``; see ``repro.litmus.frontend``).
  ``exists``/``~exists``/``forall`` conditions are honoured; malformed
  input exits 2 with a ``file:line:`` diagnostic;
* ``synth --arch A --events N`` — synthesize Forbid/Allow suites;
* ``campaign --arch A --models M1,M2 [--jobs N]`` — batch-run a litmus
  suite (synthesized diy cycles, the catalog, or litmus files) across
  many models through the campaign engine, with a persistent result
  cache under ``.repro-cache/``.  ``--profile`` prints the per-stage
  timing breakdown (merged across workers), ``--telemetry`` records a
  run manifest under ``.repro-cache/runs/``, ``--trace`` streams a
  JSONL span sidecar, ``--json`` writes the machine-readable result;
* ``serve`` / ``submit`` / ``jobs`` — the campaign *service*: ``serve``
  runs a long-lived job queue over the engine (shared result store,
  per-shard timeouts/retries, poisoned-cell degradation, per-job run
  manifests) behind a stdlib HTTP JSON API; ``submit`` sends a suite ×
  models job and streams its cells; ``jobs`` lists/inspects jobs.  See
  ``src/repro/serve/README.md`` for the protocol;
* ``stats list|show|diff`` — query recorded run manifests; ``diff``
  compares two runs metric-by-metric (``--fail-over PCT`` gates);
* ``fuzz --arch A --seed S --budget B`` — differential conformance
  fuzzing: generate litmus streams (diy cycles, directed witnesses,
  catalog ⊏-mutations, seeded random programs), cross-check the native
  model, the .cat model, the operational machine, and the brute-force
  enumerator, classify every disagreement and shrink it to a minimal
  reproducer; ``--mutants`` additionally injects weakened models and
  asserts each is detected.  Exit codes: 1 = disagreement (or
  undetected mutant), 2 = checker error;
* ``table1`` / ``table2`` / ``table3`` / ``fig7`` / ``rtl`` /
  ``ablation`` — regenerate the paper's tables and figures.  table1
  and table2 run through the campaign engine and accept ``--jobs``;
  fig7 routes its consistency checks through the engine's in-memory
  memoized models (never the persistent cache — the figure measures
  synthesis time); table3 is definitional — it has no test×model loop;
* ``catalog`` — list the catalogue.
"""

from __future__ import annotations

import argparse
import sys

from .catalog import CATALOG, get_entry
from .litmus.candidates import observable
from .litmus.from_execution import to_litmus
from .litmus.parse import loads
from .litmus.render import render
from .models.registry import get_model, model_names
from .sim.oracle import get_oracle

__all__ = ["main"]


def _cmd_catalog(args) -> int:
    for name, entry in sorted(CATALOG.items()):
        tags = ",".join(sorted(entry.tags))
        print(f"{name:<28} {entry.description}  [{tags}]")
    return 0


def _cmd_check(args) -> int:
    entry = get_entry(args.entry)
    models = [args.model] if args.model else sorted(entry.expected)
    print(entry.execution.describe())
    print()
    for name in models:
        verdict = get_model(name).check(entry.execution)
        print(verdict)
    return 0


def _cmd_litmus(args) -> int:
    entry = get_entry(args.entry)
    test = to_litmus(entry.execution, args.entry, args.arch)
    print(render(test))
    return 0


def _cmd_run(args) -> int:
    from .litmus.candidates import forall_holds
    from .litmus.frontend import load_litmus_file
    from .litmus.parse import ParseError

    try:
        test = load_litmus_file(args.file)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ParseError as exc:
        # Frontend errors already carry "file:line: message"; neutral
        # parse errors carry "line N:" — prefix those with the path.
        message = str(exc)
        if args.file not in message:
            message = f"{args.file}: {message}"
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.hw:
        oracle = get_oracle(test.arch)
        if test.quantifier == "forall":
            holds = oracle.forall(test)
            print(
                f"{test.name} on {oracle.name}: "
                f"forall {'holds' if holds else 'VIOLATED'}"
            )
        else:
            seen = oracle.observable(test)
            print(
                f"{test.name} on {oracle.name}: "
                f"{'SEEN' if seen else 'not seen'}"
            )
            if test.quantifier == "~exists" and seen:
                return 1  # the file's expectation is violated
    else:
        model = get_model(args.model or test.arch)
        if test.quantifier == "forall":
            holds = forall_holds(test, model)
            print(
                f"{test.name} under {model.name}: "
                f"forall {'holds' if holds else 'VIOLATED'}"
            )
        else:
            seen = observable(test, model)
            verdict = "observable" if seen else "forbidden"
            if test.quantifier == "~exists":
                verdict += (
                    " (VIOLATES ~exists)" if seen else " (as expected)"
                )
            print(f"{test.name} under {model.name}: {verdict}")
            if test.quantifier == "~exists" and seen:
                # Mirror `repro campaign`: a violated expected-forbidden
                # row is exit 1 (a conformance failure, not an error).
                return 1
    return 0


def _cmd_synth(args) -> int:
    from .synth.synthesis import synthesize

    result = synthesize(args.arch, args.events, time_budget=args.budget)
    print(result.summary())
    if args.show:
        from .litmus.render import render

        for i, x in enumerate(result.forbid[: args.show]):
            print(f"\n--- forbid {i} ---")
            print(render(to_litmus(x, f"forbid-{i}", args.arch)))
    return 0


def _make_cache(args):
    """The persistent campaign cache selected by --no-cache/--cache-dir."""
    from .engine.cache import NullCache, ResultCache

    if getattr(args, "no_cache", False):
        return NullCache()
    return ResultCache(getattr(args, "cache_dir", None))


def _cmd_table1(args) -> int:
    from .experiments.table1 import format_table1, run_table1

    bounds = {"x86": [2, 3], "power": [2, 3]}
    if args.full:
        bounds = {"x86": [2, 3, 4], "power": [2, 3, 4]}
    _configure_batch(args)
    with _make_cache(args) as cache:
        table = run_table1(
            bounds=bounds,
            time_budget=args.budget,
            jobs=args.jobs,
            cache=cache,
        )
    print(format_table1(table))
    return 0


def _cmd_table2(args) -> int:
    from .experiments.table2 import format_table2, run_table2

    print(format_table2(run_table2(time_budget=args.budget, jobs=args.jobs)))
    return 0


def _cmd_table3(args) -> int:
    from .experiments.table3 import format_table3

    print(format_table3())
    return 0


def _cmd_fig7(args) -> int:
    from .experiments.fig7 import format_fig7, run_fig7

    series = run_fig7(n_events=args.events, time_budget=args.budget)
    print(format_fig7(series))
    return 0


def _telemetry_requested(args) -> bool:
    """--telemetry / --profile / --trace, or ``$REPRO_TELEMETRY``."""
    import os

    return bool(
        getattr(args, "telemetry", False)
        or getattr(args, "profile", False)
        or getattr(args, "trace", None)
        or os.environ.get("REPRO_TELEMETRY", "") not in ("", "0")
    )


def _configure_batch(args) -> int:
    """Apply ``--batch`` and return the effective chunk size.

    Exported through the environment as well, so campaign worker
    processes inherit the setting.
    """
    import os

    from .litmus.candidates import batch_size, set_batch_size

    if getattr(args, "batch", None) is not None:
        set_batch_size(args.batch)
        os.environ["REPRO_BATCH"] = str(args.batch)
    return batch_size()


def _runs_dir_for(args):
    """Manifests live beside the result cache when --cache-dir is set."""
    from pathlib import Path

    cache_dir = getattr(args, "cache_dir", None)
    return Path(cache_dir) / "runs" if cache_dir else None


def _cmd_campaign(args) -> int:
    import json

    from .engine import (
        catalog_suite,
        diy_suite,
        litmus_suite,
        run_campaign,
    )
    from .obs import manifest as obs_manifest
    from .obs import telemetry as obs_telemetry

    if args.files:
        from .litmus.parse import ParseError

        try:
            items = litmus_suite(args.files)
        except (OSError, ParseError) as exc:
            # Frontend errors already carry "file:line: message".
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.suite == "catalog":
        items = catalog_suite()
    else:
        vocab = args.vocab.split(",") if args.vocab else None
        items = diy_suite(args.arch, vocab, args.length)
    if not items:
        print("empty suite")
        return 1

    models = (args.models or args.arch).split(",")
    batch = _configure_batch(args)
    # Telemetry no longer forces --jobs 1: pool workers collect their own
    # snapshots and the parent merges them (see repro.obs.telemetry).
    bundle = (
        obs_telemetry.enable(sink=args.trace)
        if _telemetry_requested(args)
        else None
    )
    report = manifest = None
    try:
        with _make_cache(args) as cache:
            try:
                result = run_campaign(
                    items, models, jobs=args.jobs, cache=cache
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            cache_line = (
                f"cache: {cache.path} ({cache.stats()})"
                if cache.path is not None
                else None
            )
            if bundle is not None:
                report = bundle.tracer.report()
                label = (
                    "files" if args.files else f"{args.suite}:{args.arch}"
                )
                manifest = obs_manifest.from_campaign(
                    result,
                    kind="campaign",
                    label=label,
                    items=items,
                    cache=cache,
                    argv=sys.argv[1:],
                    snapshot=bundle.snapshot(),
                    extra={"batch": batch},
                )
    finally:
        if bundle is not None:
            obs_telemetry.disable()
    print(result.format_matrix())
    print()
    print(result.summary())
    if args.profile and report is not None:
        print()
        print("per-stage timing (self time):")
        print(report)
    if cache_line is not None:
        print(cache_line)
    if manifest is not None:
        path = obs_manifest.write_manifest(manifest, _runs_dir_for(args))
        print(f"run manifest: {path}")
    if args.trace:
        print(f"trace sidecar: {args.trace}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                result.to_json_dict(items), handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        print(f"json result: {args.json}")
    diffs = result.diffs(items)
    if diffs:
        print()
        print("disagreements with expected verdicts:")
        for name, model, got, expected in diffs:
            print(f"  {name} under {model}: got {got}, expected {expected}")
    errors = result.errors()
    if errors:
        print()
        print("checker errors:")
        for name, model, message in errors:
            print(f"  {name} under {model}: {message}")
        return 2
    return 1 if diffs else 0


def _default_server() -> str:
    import os

    from .serve.protocol import DEFAULT_PORT

    return os.environ.get(
        "REPRO_SERVE_URL", f"http://127.0.0.1:{DEFAULT_PORT}"
    )


def _cmd_serve(args) -> int:
    from .serve import CampaignService, serve_forever

    _configure_batch(args)
    service = CampaignService(
        jobs=args.jobs,
        cell_timeout=args.cell_timeout,
        retries=args.retries,
        shards=args.shards,
        cache=_make_cache(args),
        runs_dir=_runs_dir_for(args),
        telemetry=not args.no_telemetry,
    )
    try:
        serve_forever(
            service, host=args.host, port=args.port, verbose=args.verbose
        )
    except KeyboardInterrupt:
        print("\nrepro serve: shutting down")
    except OSError as exc:
        print(
            f"error: cannot serve on {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    return 0


def _submit_suite(args) -> dict:
    """The wire suite description for a submit invocation (files are
    sent as absolute paths — the server resolves them in *its* cwd)."""
    import os

    if args.files:
        return {
            "kind": "files",
            "paths": [os.path.abspath(path) for path in args.files],
        }
    if args.suite == "catalog":
        return {"kind": "catalog"}
    vocab = args.vocab.split(",") if args.vocab else None
    return {
        "kind": "diy",
        "arch": args.arch,
        "vocab": vocab,
        "length": args.length,
    }


def _cmd_submit(args) -> int:
    import json

    from .serve import ServiceClient, ServiceError

    url = args.server or _default_server()
    client = ServiceClient(url)
    body = {
        "suite": _submit_suite(args),
        "models": (args.models or args.arch).split(","),
        "options": {
            "cell_timeout": args.cell_timeout,
            "retries": args.retries,
            "shards": args.shards,
            "batch": args.batch,
            "codegen": args.codegen,
        },
        "label": args.label or "",
    }
    try:
        job = client.submit(body)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"job {job['id']} submitted to {url}")
    if args.no_wait:
        return 0

    cells = []
    try:
        for cell in client.iter_cells(job["id"], timeout=args.timeout):
            cells.append(cell)
            if args.watch:
                mark = (
                    "!" if cell["error"] else "A" if cell["verdict"] else "F"
                )
                source = "cache" if cell["cached"] else "fresh"
                print(
                    f"  {mark} {cell['item']} x {cell['model']} [{source}]"
                )
        record = client.job(job["id"])
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    counts = record["cells"]
    print(
        f"job {record['id']} {record['state']}: "
        f"{counts['total']} cells ({counts['cached']} cached, "
        f"{counts['computed']} computed, {counts['errors']} errors, "
        f"{counts['poisoned']} poisoned) in "
        f"{record['elapsed_seconds']:.2f}s"
    )
    if record.get("manifest"):
        print(f"run manifest: {record['manifest']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {"job": record, "cells": cells},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"json result: {args.json}")
    errored = [c for c in cells if c["error"] is not None]
    if errored:
        print()
        print("cell errors:")
        for cell in errored:
            print(f"  {cell['item']} under {cell['model']}: {cell['error']}")
        return 2
    return 1 if record["diffs"] else 0


def _cmd_jobs(args) -> int:
    from .serve import ServiceClient, ServiceError

    client = ServiceClient(args.server or _default_server())
    try:
        if not args.job_id:
            jobs = client.jobs()
            if not jobs:
                print("no jobs")
                return 0
            for record in jobs:
                counts = record["cells"]
                print(
                    f"{record['id']:<8} {record['state']:<8} "
                    f"{record['label']:<20} "
                    f"{counts['done']}/{counts['total']} cells "
                    f"({counts['errors']} errors) "
                    f"{record['elapsed_seconds']:.2f}s"
                )
            return 0
        record = client.job(args.job_id)
        counts = record["cells"]
        print(f"job {record['id']} ({record['label']}): {record['state']}")
        print(f"  models: {', '.join(record['models'])}")
        print(
            f"  cells: {counts['done']}/{counts['total']} "
            f"({counts['cached']} cached, {counts['computed']} computed, "
            f"{counts['errors']} errors, {counts['poisoned']} poisoned)"
        )
        print(f"  elapsed: {record['elapsed_seconds']:.2f}s")
        if record.get("error"):
            print(f"  error: {record['error']}")
        if record.get("manifest"):
            print(f"  manifest: {record['manifest']}")
        if args.cells:
            payload = client.cells(args.job_id)
            for cell in payload["cells"]:
                mark = (
                    "!" if cell["error"] else "A" if cell["verdict"] else "F"
                )
                print(f"  {mark} {cell['item']} x {cell['model']}")
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_fuzz(args) -> int:
    from .conformance import reproducible_seed, run_fuzz
    from .conformance.report import to_json_lines, to_markdown
    from .obs import manifest as obs_manifest
    from .obs import telemetry as obs_telemetry

    if args.mutants is None:
        mutants: tuple[str, ...] | bool = ()
    elif args.mutants == "known":
        mutants = True
    else:
        mutants = tuple(args.mutants.split(","))
    bundle = (
        obs_telemetry.enable() if _telemetry_requested(args) else None
    )
    manifest = None
    try:
        # Inside the try: a malformed $REPRO_TEST_SEED is a
        # configuration error (exit 2), not a disagreement (exit 1).
        seed = reproducible_seed() if args.seed is None else args.seed
        batch = _configure_batch(args)
        with _make_cache(args) as cache:
            report = run_fuzz(
                args.arch,
                seed=seed,
                budget=args.budget,
                shrink=args.shrink,
                mutants=mutants,
                jobs=args.jobs,
                cache=cache,
                machine=not args.no_machine,
                brute=not args.no_brute,
            )
            if bundle is not None:
                manifest = obs_manifest.from_fuzz(
                    report,
                    cache=cache,
                    argv=sys.argv[1:],
                    snapshot=bundle.snapshot(),
                    extra={"batch": batch},
                )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if bundle is not None:
            obs_telemetry.disable()
    print(report.summary())
    if manifest is not None:
        path = obs_manifest.write_manifest(manifest, _runs_dir_for(args))
        print(f"run manifest: {path}")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(to_json_lines(report))
        print(f"jsonl report: {args.jsonl}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(to_markdown(report))
        print(f"markdown report: {args.report}")
    if report.errors:
        return 2
    if report.disagreements or not all(m.detected for m in report.mutants):
        return 1
    return 0


def _explain_definition(model):
    """The model's IR lowering, or None (oracles, non-compiling cat)."""
    from .ir import ir_definition

    try:
        return ir_definition(model)
    except Exception:
        return None


def _cmd_explain(args) -> int:
    import os

    from .engine.checkers import resolve_checker
    from .ir.nodes import cross_model_stats
    from .litmus.candidates import candidate_executions, expand_test

    specs = args.model.split(",")
    models = []
    for spec in specs:
        try:
            checker = resolve_checker(spec)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        model = getattr(checker, "model", None)
        if model is None:
            print(f"error: {spec!r} is not an axiomatic model", file=sys.stderr)
            return 2
        models.append((spec, model))

    # -- compiled IR DAG statistics -------------------------------------
    definitions = []
    print("compiled IR DAG:")
    for spec, model in models:
        definition = _explain_definition(model)
        if definition is None:
            print(f"  {spec:<16} (not IR-defined; no stats)")
            continue
        definitions.append((spec, definition))
        stats = definition.stats()
        print(
            f"  {spec:<16} axioms={len(definition.axioms):<2} "
            f"dag_nodes={stats['dag_nodes']:<4} "
            f"tree_size={stats['tree_size']:<5} "
            f"sharing={stats['sharing']:.2f}x"
        )
    if len(definitions) > 1:
        cross = cross_model_stats([d.roots() for _, d in definitions])
        print(
            f"  cross-model: union_dag_nodes={cross['union_nodes']} "
            f"sum_of_models={cross['sum_of_models']} "
            f"sharing={cross['sharing']:.2f}x"
        )

    # -- per-axiom relation values --------------------------------------
    if os.path.isfile(args.test):
        from .litmus.frontend import load_litmus_file
        from .litmus.parse import ParseError

        try:
            test = load_litmus_file(args.test)
        except ParseError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        candidates = [
            c.execution for c in candidate_executions(test.program)
        ]
        witnessing = sum(1 for _ in expand_test(test))
        print(
            f"\n{test.name}: {len(candidates)} candidate executions "
            f"({witnessing} satisfy the postcondition)"
        )
        if args.candidate is not None:
            if not 0 <= args.candidate < len(candidates):
                print(
                    f"error: --candidate out of range 0..{len(candidates)-1}",
                    file=sys.stderr,
                )
                return 2
            _explain_execution(
                candidates[args.candidate], models, verbose=args.relations
            )
            return 0
        for spec, model in models:
            fails: dict[str, int] = {}
            consistent = 0
            for x in candidates:
                verdict = model.check(x)
                if verdict.consistent:
                    consistent += 1
                for r in verdict.failures:
                    fails[r.name] = fails.get(r.name, 0) + 1
            parts = ", ".join(
                f"{name}:{count}" for name, count in sorted(fails.items())
            )
            print(
                f"  {spec:<16} consistent={consistent}/{len(candidates)}"
                + (f"  axiom failures: {parts}" if parts else "")
            )
        return 0

    entry = get_entry(args.test)
    x = entry.execution
    print(f"\n{args.test}:")
    print(x.describe())
    _explain_execution(x, models, verbose=args.relations)
    return 0


def _explain_execution(x, models, verbose: bool = False) -> None:
    """Print each model's per-axiom relation values on one execution."""
    from .ir.eval import evaluate as ir_evaluate
    from .models.base import witness_for

    for spec, model in models:
        print(f"\n  {spec}:")
        definition = _explain_definition(model)
        if definition is not None:
            a = analyze_for(model, x)
            for ax in definition.axioms:
                rel = ir_evaluate(ax.node, a)
                witness = witness_for(ax.kind, rel)
                status = "ok      " if witness is None else "VIOLATED"
                line = (
                    f"    {ax.name:<14} {ax.kind:<11} {status} "
                    f"|r|={len(rel)} cost={ax.node.cost}"
                )
                if witness is not None:
                    line += f" witness={witness}"
                print(line)
                if verbose:
                    print(f"      node: {ir_describe(ax.node)}")
                    print(f"      pairs: {sorted(rel.pairs())}")
        else:
            verdict = model.check(x)
            for r in verdict.results:
                status = "ok      " if r.holds else "VIOLATED"
                print(f"    {r.name:<14} {status}")


def analyze_for(model, x):
    """The analysis a model would check ``x`` against (tm-aware)."""
    return model._analysis(x)


def ir_describe(node) -> str:
    from .ir.nodes import describe

    return describe(node, maxdepth=3)


def _cmd_stats(args) -> int:
    from .obs.stats import cmd_stats

    return cmd_stats(args)


def _cmd_rtl(args) -> int:
    from .experiments.rtl import format_rtl, run_rtl_check

    print(format_rtl(run_rtl_check(n_events=args.events, time_budget=args.budget)))
    return 0


def _cmd_ablation(args) -> int:
    from .experiments.ablation import format_ablation, run_ablation

    print(format_ablation(run_ablation(n_events=args.events)))
    return 0


def _cmd_cat(args) -> int:
    from .cat import load_cat_model
    from .cat.library import library_files, library_source

    if args.list:
        for name in library_files():
            print(name)
        return 0
    if args.source:
        print(library_source(args.source), end="")
        return 0
    model = load_cat_model(args.model)
    entry = get_entry(args.entry)
    result = model.evaluate(entry.execution)
    print(entry.execution.describe())
    print()
    for check in result.checks:
        print(f"  {check.describe()}")
    for flag in result.flagged:
        print(f"  flag raised: {flag}")
    print(f"=> {'consistent' if result.consistent else 'INCONSISTENT'}")
    return 0 if result.consistent else 1


def _cmd_diy(args) -> int:
    from .synth.diy import cycle_execution, enumerate_cycles

    model = get_model(args.model)
    vocab = args.vocab.split(",")
    shown = 0
    total = 0
    for cycle in enumerate_cycles(vocab, args.length):
        total += 1
        execution = cycle_execution(cycle)
        forbidden = not model.consistent(execution)
        if args.forbidden_only and not forbidden:
            continue
        verdict = "FORBID" if forbidden else "allow "
        print(f"{verdict}  {cycle}")
        shown += 1
    print(f"({shown} shown of {total} cycles up to length {args.length})")
    return 0


def _cmd_lemmas(args) -> int:
    from .metatheory.lemmas import check_all_lemmas

    ok = True
    for report in check_all_lemmas(args.events, args.limit):
        print(report.summary())
        ok = ok and report.holds
    return 0 if ok else 1


def _cmd_elision(args) -> int:
    from .metatheory.lockelision import check_lock_elision

    result = check_lock_elision(
        args.arch,
        fixed=args.fixed,
        txn_writes_lock=args.write_lock,
        time_budget=args.budget,
    )
    print(result.summary())
    if result.counterexample and args.show:
        abstract, concrete = result.counterexample
        print("\nabstract (CROrder-violating) execution:")
        print(abstract.describe())
        print("\nconcrete image (consistent under the TM model):")
        print(concrete.describe())
    return 0 if result.sound else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transactions and weak memory in x86, Power, ARMv8, C++",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="list catalogued executions")

    p = sub.add_parser("check", help="check a catalogued execution")
    p.add_argument("entry")
    p.add_argument("--model", choices=model_names())

    p = sub.add_parser("litmus", help="render a catalogue entry as litmus")
    p.add_argument("entry")
    p.add_argument("--arch", default="armv8",
                   choices=["x86", "power", "armv8", "cpp"])

    p = sub.add_parser("run", help="run a litmus file against a model/hw")
    p.add_argument("file")
    p.add_argument("--model", choices=model_names())
    p.add_argument("--hw", action="store_true")

    p = sub.add_parser("synth", help="synthesize Forbid/Allow suites")
    p.add_argument("--arch", default="x86",
                   choices=["x86", "power", "armv8", "cpp", "riscv"])
    p.add_argument("--events", type=int, default=3)
    p.add_argument("--budget", type=float, default=None)
    p.add_argument("--show", type=int, default=0)

    def add_engine_options(p) -> None:
        """Campaign-engine knobs shared by the batch commands."""
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (0 = one per CPU)")
        p.add_argument("--no-cache", action="store_true",
                       help="skip the persistent result cache")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache location (default .repro-cache)")
        p.add_argument("--batch", type=int, default=None, metavar="N",
                       help="candidate chunk size for the batched "
                            "consistency kernels (0 = scalar path; "
                            "default: $REPRO_BATCH, else 64)")

    p = sub.add_parser("campaign",
                       help="batch-run a litmus suite across models")
    p.add_argument("files", nargs="*",
                   help="litmus files, neutral or herd dialect "
                        "(overrides --suite)")
    p.add_argument("--arch", default="x86",
                   choices=["x86", "power", "armv8", "cpp", "riscv"])
    p.add_argument("--models", default=None,
                   help="comma-separated checker specs: registry names "
                        "(x86), .cat library names (x86tm), '!notm' "
                        "baselines, hw:<arch> oracles (default: --arch)")
    p.add_argument("--suite", default="diy", choices=["diy", "catalog"])
    p.add_argument("--vocab", default=None,
                   help="diy relaxation vocabulary (comma-separated)")
    p.add_argument("--length", type=int, default=3,
                   help="max diy cycle length")
    p.add_argument("--profile", action="store_true",
                   help="print a per-stage timing breakdown "
                        "(expansion / analysis / axioms / cache); "
                        "works with --jobs: workers ship their timers "
                        "back and the parent merges them")
    p.add_argument("--telemetry", action="store_true",
                   help="record structured telemetry and write a run "
                        "manifest under the cache's runs/ directory "
                        "(also enabled by $REPRO_TELEMETRY=1)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="stream completed spans to a JSONL trace "
                        "sidecar (implies --telemetry)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the machine-readable campaign result "
                        "(matrix, per-cell timings, cache stats)")
    add_engine_options(p)

    from .serve.protocol import DEFAULT_PORT

    p = sub.add_parser("serve",
                       help="run the campaign service: a job queue with "
                            "a shared result store and an HTTP JSON API")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--cell-timeout", type=float, default=60.0,
                   metavar="SECS",
                   help="default per-cell compute budget; a shard is "
                        "abandoned after cell_timeout x its cell count")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="default re-runs for a shard whose worker died "
                        "or hung before its cells are poisoned")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="pool tasks per job (default 4 x jobs)")
    p.add_argument("--no-telemetry", action="store_true",
                   help="skip the per-job telemetry bundle and manifest")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    add_engine_options(p)

    p = sub.add_parser("submit",
                       help="submit a suite x models job to a running "
                            "campaign service and stream its cells")
    p.add_argument("files", nargs="*",
                   help="litmus files (sent as absolute paths; the "
                        "server must see the same filesystem)")
    p.add_argument("--arch", default="x86",
                   choices=["x86", "power", "armv8", "cpp", "riscv"])
    p.add_argument("--models", default=None,
                   help="comma-separated checker specs (default: --arch)")
    p.add_argument("--suite", default="diy", choices=["diy", "catalog"])
    p.add_argument("--vocab", default=None,
                   help="diy relaxation vocabulary (comma-separated)")
    p.add_argument("--length", type=int, default=3,
                   help="max diy cycle length")
    p.add_argument("--server", default=None, metavar="URL",
                   help="service endpoint (default $REPRO_SERVE_URL or "
                        f"http://127.0.0.1:{DEFAULT_PORT})")
    p.add_argument("--label", default=None,
                   help="job label for listings and the run manifest")
    p.add_argument("--cell-timeout", type=float, default=60.0,
                   metavar="SECS")
    p.add_argument("--retries", type=int, default=1, metavar="N")
    p.add_argument("--shards", type=int, default=None, metavar="N")
    p.add_argument("--batch", type=int, default=None, metavar="N",
                   help="candidate chunk size for this job's batched "
                        "kernels (0 = scalar path; default: the "
                        "server's setting)")
    p.add_argument("--codegen", action="store_true", default=None,
                   help="force the generated-kernel tier on for this "
                        "job (default: the server's setting)")
    p.add_argument("--no-codegen", dest="codegen", action="store_false",
                   help="force the generated-kernel tier off for this "
                        "job (interpreted plans)")
    p.add_argument("--watch", action="store_true",
                   help="print each cell as it lands")
    p.add_argument("--no-wait", action="store_true",
                   help="submit and exit without polling")
    p.add_argument("--timeout", type=float, default=None, metavar="SECS",
                   help="give up polling after this long (error exit)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the job record and every cell as JSON")

    p = sub.add_parser("jobs",
                       help="list a campaign service's jobs, or show one")
    p.add_argument("job_id", nargs="?", default=None)
    p.add_argument("--server", default=None, metavar="URL",
                   help="service endpoint (default $REPRO_SERVE_URL or "
                        f"http://127.0.0.1:{DEFAULT_PORT})")
    p.add_argument("--cells", action="store_true",
                   help="with a job id: dump its verdict cells")

    p = sub.add_parser("fuzz",
                       help="differential conformance fuzzing across "
                            "native/.cat/machine/brute-force checkers")
    p.add_argument("--arch", default="armv8",
                   choices=["x86", "power", "armv8", "riscv", "cpp"])
    p.add_argument("--seed", type=int, default=None,
                   help="generator seed (default: $REPRO_TEST_SEED)")
    p.add_argument("--budget", default="small",
                   choices=["smoke", "small", "medium", "large"],
                   help="suite size / oracle-eligibility tier")
    p.add_argument("--shrink", dest="shrink", action="store_true",
                   default=True,
                   help="shrink disagreements to minimal reproducers "
                        "(default)")
    p.add_argument("--no-shrink", dest="shrink", action="store_false")
    p.add_argument("--mutants", nargs="?", const="known", default=None,
                   metavar="AXIOMS",
                   help="inject weakened models and assert detection: "
                        "bare flag = the arch's known mutants, or a "
                        "comma-separated axiom list")
    p.add_argument("--no-machine", action="store_true",
                   help="skip the operational/hardware checkers")
    p.add_argument("--no-brute", action="store_true",
                   help="skip the brute-force ground-truth checker")
    p.add_argument("--jsonl", metavar="PATH",
                   help="write the machine-readable JSONL report")
    p.add_argument("--report", metavar="PATH",
                   help="write the markdown report")
    p.add_argument("--telemetry", action="store_true",
                   help="record structured telemetry and write a run "
                        "manifest under the cache's runs/ directory "
                        "(also enabled by $REPRO_TELEMETRY=1)")
    add_engine_options(p)

    p = sub.add_parser("explain",
                       help="print a model's compiled IR DAG stats and "
                            "per-axiom relation values for a test")
    p.add_argument("--test", required=True, metavar="NAME|FILE",
                   help="catalog entry name or litmus file path")
    p.add_argument("--model", required=True, metavar="SPECS",
                   help="comma-separated checker specs (registry names, "
                        ".cat library names, mut:<arch>:<axiom>, ...)")
    p.add_argument("--candidate", type=int, default=None, metavar="N",
                   help="for a litmus file: dump the N-th candidate's "
                        "per-axiom relations instead of the summary")
    p.add_argument("--relations", action="store_true",
                   help="also dump each axiom's IR node and pairs")

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--budget", type=float, default=120.0)
    p.add_argument("--full", action="store_true")
    add_engine_options(p)

    p = sub.add_parser("table2", help="regenerate Table 2")
    p.add_argument("--budget", type=float, default=120.0)
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (0 = one per CPU)")

    sub.add_parser("table3", help="print the lock-elision pi mapping")

    p = sub.add_parser("fig7", help="regenerate the Fig 7 curve")
    p.add_argument("--events", type=int, default=4)
    p.add_argument("--budget", type=float, default=120.0)

    p = sub.add_parser("stats",
                       help="list, inspect, and diff recorded run "
                            "manifests (campaigns, fuzz runs, benches)")
    p.add_argument("action", choices=["list", "show", "diff"])
    p.add_argument("runs", nargs="*",
                   help="run references: a manifest path, 'last', "
                        "'last~N', or a unique run-id prefix "
                        "(show takes one, diff takes baseline + fresh)")
    p.add_argument("--runs-dir", default=None, metavar="DIR",
                   help="manifest directory (default "
                        "$REPRO_CACHE_DIR/runs or .repro-cache/runs)")
    p.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                   help="diff: exit 1 if any metric regresses by more "
                        "than PCT percent (default: warn only)")

    p = sub.add_parser("rtl", help="run the §6.2 RTL conformance check")
    p.add_argument("--events", type=int, default=4)
    p.add_argument("--budget", type=float, default=300.0)

    p = sub.add_parser("ablation", help="Power vs atomicity-only ablation")
    p.add_argument("--events", type=int, default=3)

    p = sub.add_parser("cat", help="evaluate a .cat library model")
    p.add_argument("model", nargs="?", default="x86")
    p.add_argument("entry", nargs="?", default="fig2")
    p.add_argument("--list", action="store_true",
                   help="list the .cat library files")
    p.add_argument("--source", metavar="FILE",
                   help="print a library file's source")

    p = sub.add_parser("diy", help="enumerate diy-style critical cycles")
    p.add_argument("--model", default="x86", choices=model_names())
    p.add_argument("--vocab",
                   default="PodWR,PodWW,PodRR,PodRW,Rfe,Fre,Wse")
    p.add_argument("--length", type=int, default=4)
    p.add_argument("--forbidden-only", action="store_true")

    p = sub.add_parser("lemmas", help="check the Appendix C lemmas")
    p.add_argument("--events", type=int, default=2)
    p.add_argument("--limit", type=int, default=None)

    p = sub.add_parser("elision", help="lock-elision soundness search")
    p.add_argument("--arch", default="armv8",
                   choices=["x86", "power", "armv8", "riscv"])
    p.add_argument("--fixed", action="store_true",
                   help="append the fence fix to lock()")
    p.add_argument("--write-lock", action="store_true",
                   help="the section 1.1 write-to-lock serialising fix")
    p.add_argument("--budget", type=float, default=None)
    p.add_argument("--show", action="store_true",
                   help="print the counterexample pair")

    return parser


_COMMANDS = {
    "catalog": _cmd_catalog,
    "check": _cmd_check,
    "litmus": _cmd_litmus,
    "run": _cmd_run,
    "synth": _cmd_synth,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "explain": _cmd_explain,
    "fuzz": _cmd_fuzz,
    "stats": _cmd_stats,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig7": _cmd_fig7,
    "rtl": _cmd_rtl,
    "ablation": _cmd_ablation,
    "cat": _cmd_cat,
    "diy": _cmd_diy,
    "lemmas": _cmd_lemmas,
    "elision": _cmd_elision,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
