"""The campaign engine: parallel, cached batch execution of litmus
suites across memory models.

This package is the herd/diy-style batch runner of the reproduction:
it takes any iterable of tests — catalog entries, parsed litmus files,
``synth.diy`` output, synthesis results — and a set of models (native,
``.cat``, or simulated hardware), and executes the full cross-product
with a worker pool, memoized candidate enumeration, and a persistent
on-disk result cache under ``.repro-cache/``.

Quickstart::

    from repro.engine import ResultCache, diy_suite, run_campaign

    suite = diy_suite("x86", max_length=3)
    result = run_campaign(suite, ["x86", "x86tm"], jobs=4,
                          cache=ResultCache())
    print(result.format_matrix())
    print(result.summary())

See ``examples/campaign.py`` and ``src/repro/engine/README.md`` for the
full tour, or run ``repro campaign --help``.
"""

from .cache import (
    CACHE_VERSION,
    NullCache,
    ResultCache,
    cache_key,
    default_cache_dir,
    fingerprint,
)
from .campaign import (
    CampaignItem,
    CampaignResult,
    CellResult,
    catalog_suite,
    diy_suite,
    execution_suite,
    litmus_suite,
    run_campaign,
)
from .checkers import (
    BruteForceChecker,
    Checker,
    ModelChecker,
    OracleChecker,
    resolve_checker,
)
from .memo import MemoModel
from .pool import default_jobs, parallel_map

__all__ = [
    "BruteForceChecker",
    "CACHE_VERSION",
    "CampaignItem",
    "CampaignResult",
    "CellResult",
    "Checker",
    "MemoModel",
    "ModelChecker",
    "NullCache",
    "OracleChecker",
    "ResultCache",
    "cache_key",
    "catalog_suite",
    "default_cache_dir",
    "default_jobs",
    "diy_suite",
    "execution_suite",
    "fingerprint",
    "litmus_suite",
    "parallel_map",
    "resolve_checker",
    "run_campaign",
]
