"""Checker resolution: one string names one way to judge a test.

The campaign engine executes a cross-product of *items* × *checkers*.
A checker maps a campaign payload — a :class:`~repro.litmus.test.LitmusTest`
or a bare :class:`~repro.core.execution.Execution` — to a boolean
verdict:

* for a litmus test, "is the postcondition observable?"
  (:func:`repro.litmus.candidates.observable` semantics) — except
  ``forall`` tests, whose verdict is "does every reachable final state
  satisfy the condition?" (:func:`~repro.litmus.candidates.
  forall_holds`, with brute-force and machine counterparts);
* for an execution, "is it consistent under the model?".

Specs are plain strings so they cross process boundaries cheaply (the
worker pool resolves them locally and memoizes the instantiation):

=====================  =================================================
``x86``                native Python model from ``repro.models.registry``
``x86!notm``           the same with ``tm=False`` (baseline view)
``x86tm``              .cat library model (any ``CAT_MODEL_FILES`` stem,
                       registry key prefixed ``cat:``, or a ``*.cat``
                       path)
``hw:x86``             hardware stand-in from ``repro.sim.oracle``
``hw:armv8:machine``   oracle variant (``machine`` = the operational
                       machine, ``buggy`` = the §6.2 RTL prototype)
``brute:x86``          the native model driven by the *brute-force*
                       candidate enumerator — ground truth for the
                       differential fuzzer's enumeration splits
``mut:armv8:TxnOrder``  the native model with one axiom dropped — the
                       fuzzer's injected-weakening mutants
=====================  =================================================
"""

from __future__ import annotations

import hashlib
import inspect
from functools import lru_cache

from ..core.execution import Execution
from ..litmus.candidates import forall_holds, observable
from ..litmus.test import LitmusTest
from ..models.base import MemoryModel
from ..models.registry import MODELS, get_model

__all__ = [
    "BruteForceChecker",
    "Checker",
    "ModelChecker",
    "OracleChecker",
    "definition_hash",
    "resolve_checker",
    "spec_definition_hash",
]


def definition_hash(obj) -> str:
    """A short hash of a model/oracle *definition*, for cache keying.

    Editing a model must invalidate its cached verdicts, so the cache
    key includes this alongside the spec string.  Objects may provide a
    ``definition_token()`` naming their definition explicitly — every
    IR-defined model (all native models, compiled ``.cat`` models,
    mutants) derives its token from the interned structural digest of
    its axiom DAG, so cached verdicts are invalidated *precisely* when
    the semantics change: reformatting a model file or renaming a local
    binding keeps the cache warm, editing an axiom's relation always
    invalidates.  Otherwise, for ``.cat`` models the parsed AST is
    hashed, and for remaining Python models and oracles, the class
    source.  Edits to shared helpers in other modules are not caught —
    bump :data:`repro.engine.cache.CACHE_VERSION` for those.
    """
    from ..cat.model import CatModel

    token = getattr(obj, "definition_token", None)
    if callable(token):
        text = token()
    elif isinstance(obj, CatModel):
        text = repr(obj.ast)
    else:
        try:
            text = inspect.getsource(type(obj))
        except (OSError, TypeError):  # pragma: no cover - builtins only
            text = repr(type(obj))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


class Checker:
    """A named verdict function over campaign payloads."""

    def __init__(self, spec: str) -> None:
        self.spec = spec

    def verdict(self, payload: LitmusTest | Execution) -> bool:
        raise NotImplementedError

    def definition_hash(self) -> str:
        """Hash of the underlying definition (see :func:`definition_hash`)."""
        return ""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.spec}>"


class ModelChecker(Checker):
    """An axiomatic model (native or .cat) used as a checker.

    Checkers of one campaign share one
    :class:`~repro.core.analysis.CandidateAnalysis` per candidate: work
    is grouped by test, the memoized candidate streams hand every
    checker the *same* ``Execution`` objects, and each model reads its
    base relations off the analysis attached to them.  Models declaring
    :attr:`~repro.models.base.MemoryModel.enforces_coherence` further
    skip (or never expand) candidates violating per-location coherence.
    """

    def __init__(self, spec: str, model: MemoryModel) -> None:
        super().__init__(spec)
        self.model = model

    def verdict(self, payload: LitmusTest | Execution) -> bool:
        if isinstance(payload, LitmusTest):
            if payload.quantifier == "forall":
                return forall_holds(payload, self.model)
            return observable(payload, self.model)
        return self.model.consistent(payload)

    def definition_hash(self) -> str:
        return definition_hash(self.model)


class OracleChecker(Checker):
    """A simulated-hardware oracle used as a checker (litmus tests only)."""

    def __init__(self, spec: str, oracle) -> None:
        super().__init__(spec)
        self.oracle = oracle

    def definition_hash(self) -> str:
        return definition_hash(self.oracle)

    def verdict(self, payload: LitmusTest | Execution) -> bool:
        if not isinstance(payload, LitmusTest):
            raise TypeError(
                f"oracle checker {self.spec!r} needs a litmus test, "
                f"got {type(payload).__name__}"
            )
        if payload.quantifier == "forall":
            return self.oracle.forall(payload)
        return self.oracle.observable(payload)


class BruteForceChecker(Checker):
    """A native model driven by the brute-force candidate enumerator.

    Semantically identical to the :class:`ModelChecker` for the same
    model — any verdict difference is an *enumeration split*: a bug in
    the constraint-pruned incremental search (or in the brute-force
    reference).  The differential fuzzer runs this on small tests as its
    ground-truth oracle; it shares nothing with the pruned path (no
    memoized expansion, no coherence gating, no postcondition pushing).
    """

    def __init__(self, spec: str, model: MemoryModel) -> None:
        super().__init__(spec)
        self.model = model

    def verdict(self, payload: LitmusTest | Execution) -> bool:
        from ..litmus.candidates import brute_force_forall, brute_force_observable

        if isinstance(payload, LitmusTest):
            if payload.quantifier == "forall":
                return brute_force_forall(payload, self.model)
            return brute_force_observable(payload, self.model)
        return self.model.consistent(payload)

    def definition_hash(self) -> str:
        return "brute-" + definition_hash(self.model)


def _cat_file_for(name: str) -> str | None:
    """Resolve ``name`` to a .cat library file, or None."""
    from ..cat.model import CAT_MODEL_FILES

    if name.endswith(".cat"):
        return name
    if f"{name}.cat" in CAT_MODEL_FILES.values():
        return f"{name}.cat"
    return None


@lru_cache(maxsize=None)
def spec_definition_hash(spec: str) -> str:
    """The resolved checker's definition hash, memoized per process.

    Manifest building and cell-span keying hash the same definitions a
    campaign keys its cache with; memoizing by spec string avoids
    re-walking model sources per run."""
    return resolve_checker(spec).definition_hash()


@lru_cache(maxsize=None)
def resolve_checker(spec: str) -> Checker:
    """Instantiate the checker named by ``spec`` (memoized per process)."""
    if spec.startswith("hw:"):
        from ..sim.oracle import oracle_for_spec

        return OracleChecker(spec, oracle_for_spec(spec[3:]))
    if spec.startswith("brute:"):
        name = spec[6:]
        if name not in MODELS:
            raise ValueError(
                f"unknown model {name!r} in {spec!r}; brute: takes a "
                f"registry model ({', '.join(sorted(MODELS))})"
            )
        return BruteForceChecker(spec, get_model(name))
    if spec.startswith("mut:"):
        from ..conformance.mutants import drop_axiom

        try:
            _, arch, axiom = spec.split(":", 2)
        except ValueError:
            raise ValueError(
                f"malformed mutant spec {spec!r}; use 'mut:<arch>:<axiom>'"
            ) from None
        return ModelChecker(spec, drop_axiom(arch, axiom))

    name, _, suffix = spec.partition("!")
    if suffix not in ("", "notm"):
        raise ValueError(f"unknown checker suffix {suffix!r} in {spec!r}")
    tm = suffix != "notm"

    if name.startswith("cat:"):
        from ..cat.model import load_cat_model

        return ModelChecker(spec, load_cat_model(name[4:], tm=tm))
    if name in MODELS:
        return ModelChecker(spec, get_model(name, tm=tm))
    cat_file = _cat_file_for(name)
    if cat_file is not None:
        from ..cat.model import load_cat_model

        return ModelChecker(spec, load_cat_model(cat_file, tm=tm))
    raise ValueError(
        f"unknown checker {spec!r}; use a registry model "
        f"({', '.join(sorted(MODELS))}), a .cat library name, "
        f"'cat:<name>', 'hw:<arch>[:<variant>]', 'brute:<model>', "
        f"or 'mut:<arch>:<axiom>'"
    )
