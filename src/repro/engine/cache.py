"""Persistent, content-addressed result cache for campaign runs.

Every (test, model) cell of a campaign is keyed by a SHA-256 fingerprint
of the *content* of the test (its program and postcondition, or the
execution graph itself) combined with the model specification.  Renaming
a test does not invalidate its entry; changing a single instruction
does.

The store is an append-only JSONL file under ``.repro-cache/`` (override
with the ``REPRO_CACHE_DIR`` environment variable), one record per line::

    {"key": "<sha256>", "verdict": true, "elapsed": 0.0021,
     "item": "diy-PodWR Fre PodWR Fre", "model": "x86"}

Append-only keeps writes crash-safe and makes the cache trivially
mergeable across machines (``cat`` two caches together); on load the
last record for a key wins.

The file is also a *shared* store: every record is appended through an
``O_APPEND`` descriptor as one ``write()`` of one complete line, so any
number of processes can append to the same file without interleaving
each other's records, and :meth:`ResultCache.refresh` incrementally
re-reads the tail other writers appended since the last load — the
campaign service's concurrent clients and warm workers dedupe work
fleet-wide through one file.  A torn final line (a crashed or mid-write
appender) is tolerated and re-read once complete; any *interior*
undecodable line is real corruption, counted in
:attr:`ResultCache.corrupt_lines` and warned about, never silently
dropped.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import warnings
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any

from ..core.execution import Execution
from ..core.relation import Relation
from ..litmus.test import LitmusTest

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "NullCache",
    "default_cache_dir",
    "fingerprint",
    "cache_key",
]

#: Bumped whenever the fingerprint scheme or record layout changes.
CACHE_VERSION = 2

#: Default directory for the on-disk store, relative to the CWD.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


# ----------------------------------------------------------------------
# Canonical fingerprinting
# ----------------------------------------------------------------------


def _canon(obj: Any) -> Any:
    """A JSON-serialisable canonical form with deterministic ordering.

    ``repr`` of a frozenset is hash-order dependent (and string hashing
    is randomised per process), so sets and dicts are sorted by their
    canonical JSON encoding — the fingerprint of an object is identical
    across processes and runs.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.value]
    if isinstance(obj, Execution):
        return ["Execution", _canon(obj.signature())]
    if isinstance(obj, LitmusTest):
        # The name is presentation, not content: renaming a test must
        # not invalidate its cache entries.
        return [
            "LitmusTest",
            obj.arch,
            obj.quantifier,
            _canon(obj.program),
            _canon(obj.postcondition),
            _canon(obj.init),
        ]
    if isinstance(obj, Relation):
        return ["Relation", obj.n, sorted(obj.pairs())]
    if is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            [[f.name, _canon(getattr(obj, f.name))] for f in fields(obj)],
        ]
    if isinstance(obj, (frozenset, set)):
        return ["set", sorted((_canon(v) for v in obj), key=_dumps)]
    if isinstance(obj, dict):
        return [
            "dict",
            sorted(
                ([_canon(k), _canon(v)] for k, v in obj.items()), key=_dumps
            ),
        ]
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    raise TypeError(f"cannot fingerprint {type(obj).__name__}")


def _dumps(canon: Any) -> str:
    return json.dumps(canon, sort_keys=True, separators=(",", ":"))


def fingerprint(obj: Any) -> str:
    """Content hash of a test payload (LitmusTest, Execution, ...)."""
    return hashlib.sha256(_dumps(_canon(obj)).encode()).hexdigest()


def cache_key(
    item_fingerprint: str, model_spec: str, definition: str = ""
) -> str:
    """The cache key of one (test, model) cell.

    ``definition`` is a hash of the model's definition (see
    :func:`repro.engine.checkers.definition_hash`): editing a model's
    axioms or its ``.cat`` source invalidates its cached verdicts.
    """
    text = f"v{CACHE_VERSION}:{item_fingerprint}:{model_spec}:{definition}"
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------


class ResultCache:
    """The on-disk JSONL store, with hit/miss accounting.

    Safe to share between processes: appends go through an ``O_APPEND``
    descriptor as single complete-line ``write()`` calls (the kernel
    serializes the offset, so concurrent appenders never interleave
    inside a record), and :meth:`refresh` folds in records other
    processes appended since this instance last read the file.

    Args:
        path: the JSONL file (or a directory, in which case
            ``results.jsonl`` inside it).  Defaults to
            ``default_cache_dir()/results.jsonl``.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        path = Path(path) if path is not None else default_cache_dir()
        if path.suffix != ".jsonl":
            path = path / "results.jsonl"
        self.path = path
        self._records: dict[str, dict] = {}
        self._append_fd: int | None = None
        #: Byte offset of consumed *complete* lines; a torn final line
        #: stays past it and is re-read once its writer finishes it.
        self._offset = 0
        self.hits = 0
        self.misses = 0
        #: Interior undecodable lines seen so far (real corruption, as
        #: opposed to a tolerated torn tail).
        self.corrupt_lines = 0
        self.refresh()

    def refresh(self) -> int:
        """Fold in records appended to the file since the last read.

        Incremental: only the tail past the last consumed byte offset
        is read, so concurrent clients can refresh cheaply before each
        lookup burst.  Last record wins, exactly as a full reload would
        resolve duplicates.  A final line without a trailing newline is
        a torn in-flight append: it is left unconsumed (and re-read by
        the next refresh once complete).  Interior lines that fail to
        decode are counted in :attr:`corrupt_lines` and reported with a
        warning — mid-file corruption must surface, not vanish.

        Returns the number of records folded in.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return 0
        if size < self._offset:
            # Truncated or replaced underneath us: start over.
            self._records.clear()
            self._offset = 0
            self.corrupt_lines = 0
        if size == self._offset:
            return 0
        with self.path.open("rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        lines = chunk.split(b"\n")
        torn = lines.pop()  # b"" after a complete final line
        self._offset += len(chunk) - len(torn)
        folded = 0
        corrupt = 0
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = record.get("key")
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                corrupt += 1
                continue
            if key:
                self._records[key] = record
                folded += 1
            else:
                corrupt += 1
        if corrupt:
            self.corrupt_lines += corrupt
            warnings.warn(
                f"{self.path}: {corrupt} corrupt cache line(s) skipped "
                f"({self.corrupt_lines} total); the affected verdicts "
                "will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
        return folded

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> dict | None:
        """The cached record for ``key`` (counts a hit or a miss)."""
        record = self._records.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` and append it to the file.

        The record reaches the file as **one** ``write()`` of one
        complete line on an ``O_APPEND`` descriptor: the kernel
        serializes the append offset, so records from concurrent
        writers never tear each other — at worst a reader sees a
        not-yet-complete final line, which :meth:`refresh` tolerates.
        The descriptor stays open across puts (the hot paths write one
        record per computed cell).
        """
        record = {"key": key, **record}
        self._records[key] = record
        if self._append_fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append_fd = os.open(
                self.path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        os.write(self._append_fd, line)

    def close(self) -> None:
        """Close the append descriptor (reopened lazily by the next
        put).

        Owners use the cache as a context manager (``with
        ResultCache(...) as cache:``) rather than relying on GC timing
        — the class deliberately has no ``__del__``.
        """
        if self._append_fd is not None:
            os.close(self._append_fd)
            self._append_fd = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats_dict(self) -> dict:
        """Structured accounting for metrics snapshots and manifests."""
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "bytes": size,
            "corrupt_lines": self.corrupt_lines,
        }

    def stats(self) -> str:
        text = (
            f"{len(self)} entries, {self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.0f}% hit rate)"
        )
        if self.corrupt_lines:
            text += f", {self.corrupt_lines} corrupt lines skipped"
        return text


class NullCache:
    """A cache that remembers nothing (the ``--no-cache`` path)."""

    path = None
    hits = 0
    misses = 0
    hit_rate = 0.0
    corrupt_lines = 0

    def __len__(self) -> int:
        return 0

    def refresh(self) -> int:
        return 0

    def __enter__(self) -> "NullCache":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def close(self) -> None:
        pass

    def get(self, key: str) -> None:
        return None

    def put(self, key: str, record: dict) -> None:
        pass

    def stats_dict(self) -> dict:
        return {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "bytes": 0,
            "corrupt_lines": 0,
        }

    def stats(self) -> str:
        return "caching disabled"
