"""Persistent, content-addressed result cache for campaign runs.

Every (test, model) cell of a campaign is keyed by a SHA-256 fingerprint
of the *content* of the test (its program and postcondition, or the
execution graph itself) combined with the model specification.  Renaming
a test does not invalidate its entry; changing a single instruction
does.

The store is an append-only JSONL file under ``.repro-cache/`` (override
with the ``REPRO_CACHE_DIR`` environment variable), one record per line::

    {"key": "<sha256>", "verdict": true, "elapsed": 0.0021,
     "item": "diy-PodWR Fre PodWR Fre", "model": "x86"}

Append-only keeps writes crash-safe and makes the cache trivially
mergeable across machines (``cat`` two caches together); on load the
last record for a key wins.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any

from ..core.execution import Execution
from ..core.relation import Relation
from ..litmus.test import LitmusTest

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "NullCache",
    "default_cache_dir",
    "fingerprint",
    "cache_key",
]

#: Bumped whenever the fingerprint scheme or record layout changes.
CACHE_VERSION = 2

#: Default directory for the on-disk store, relative to the CWD.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


# ----------------------------------------------------------------------
# Canonical fingerprinting
# ----------------------------------------------------------------------


def _canon(obj: Any) -> Any:
    """A JSON-serialisable canonical form with deterministic ordering.

    ``repr`` of a frozenset is hash-order dependent (and string hashing
    is randomised per process), so sets and dicts are sorted by their
    canonical JSON encoding — the fingerprint of an object is identical
    across processes and runs.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.value]
    if isinstance(obj, Execution):
        return ["Execution", _canon(obj.signature())]
    if isinstance(obj, LitmusTest):
        # The name is presentation, not content: renaming a test must
        # not invalidate its cache entries.
        return [
            "LitmusTest",
            obj.arch,
            obj.quantifier,
            _canon(obj.program),
            _canon(obj.postcondition),
            _canon(obj.init),
        ]
    if isinstance(obj, Relation):
        return ["Relation", obj.n, sorted(obj.pairs())]
    if is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            [[f.name, _canon(getattr(obj, f.name))] for f in fields(obj)],
        ]
    if isinstance(obj, (frozenset, set)):
        return ["set", sorted((_canon(v) for v in obj), key=_dumps)]
    if isinstance(obj, dict):
        return [
            "dict",
            sorted(
                ([_canon(k), _canon(v)] for k, v in obj.items()), key=_dumps
            ),
        ]
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    raise TypeError(f"cannot fingerprint {type(obj).__name__}")


def _dumps(canon: Any) -> str:
    return json.dumps(canon, sort_keys=True, separators=(",", ":"))


def fingerprint(obj: Any) -> str:
    """Content hash of a test payload (LitmusTest, Execution, ...)."""
    return hashlib.sha256(_dumps(_canon(obj)).encode()).hexdigest()


def cache_key(
    item_fingerprint: str, model_spec: str, definition: str = ""
) -> str:
    """The cache key of one (test, model) cell.

    ``definition`` is a hash of the model's definition (see
    :func:`repro.engine.checkers.definition_hash`): editing a model's
    axioms or its ``.cat`` source invalidates its cached verdicts.
    """
    text = f"v{CACHE_VERSION}:{item_fingerprint}:{model_spec}:{definition}"
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------


class ResultCache:
    """The on-disk JSONL store, with hit/miss accounting.

    Args:
        path: the JSONL file (or a directory, in which case
            ``results.jsonl`` inside it).  Defaults to
            ``default_cache_dir()/results.jsonl``.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        path = Path(path) if path is not None else default_cache_dir()
        if path.suffix != ".jsonl":
            path = path / "results.jsonl"
        self.path = path
        self._records: dict[str, dict] = {}
        self._append_handle = None
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not self.path.is_file():
            return
        with self.path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail write; ignore
                key = record.get("key")
                if key:
                    self._records[key] = record

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> dict | None:
        """The cached record for ``key`` (counts a hit or a miss)."""
        record = self._records.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` and append it to the file.

        The append handle stays open across puts (the hot paths write
        one record per computed cell) and is flushed per record so
        concurrent readers and crashed runs see complete lines.
        """
        record = {"key": key, **record}
        self._records[key] = record
        if self._append_handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append_handle = self.path.open("a", encoding="utf-8")
        self._append_handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._append_handle.flush()

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next put).

        Flushing is durable only once this runs; owners use the cache
        as a context manager (``with ResultCache(...) as cache:``)
        rather than relying on GC timing — the class deliberately has
        no ``__del__``.
        """
        if self._append_handle is not None:
            self._append_handle.close()
            self._append_handle = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats_dict(self) -> dict:
        """Structured accounting for metrics snapshots and manifests."""
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "bytes": size,
        }

    def stats(self) -> str:
        return (
            f"{len(self)} entries, {self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.0f}% hit rate)"
        )


class NullCache:
    """A cache that remembers nothing (the ``--no-cache`` path)."""

    path = None
    hits = 0
    misses = 0
    hit_rate = 0.0

    def __len__(self) -> int:
        return 0

    def __enter__(self) -> "NullCache":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def close(self) -> None:
        pass

    def get(self, key: str) -> None:
        return None

    def put(self, key: str, record: dict) -> None:
        pass

    def stats_dict(self) -> dict:
        return {"entries": 0, "hits": 0, "misses": 0, "bytes": 0}

    def stats(self) -> str:
        return "caching disabled"
