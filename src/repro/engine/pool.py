"""Chunked process-pool execution with a deterministic serial fallback.

Every parallel path in the engine funnels through :func:`parallel_map`,
which preserves input order (so results are identical for any worker
count) and degrades to a plain in-process loop when ``jobs <= 1``, when
there is only one task, or when the platform cannot fork worker
processes (sandboxes, restricted CI runners).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..obs import telemetry

__all__ = ["parallel_map", "default_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0``: the CPU count."""
    return os.cpu_count() or 1


def _worker_init() -> None:
    """Per-worker-process setup.

    Forked workers inherit the parent's telemetry objects; anything
    recorded into those copies would be silently lost.  Resetting here
    makes workers start observably *off*, so telemetry-tagged campaign
    units collect into fresh local bundles and ship snapshots back with
    their results (see :func:`repro.engine.campaign._run_unit`).
    """
    telemetry.reset_worker_state()


def parallel_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: int = 1,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(t) for t in tasks]``, optionally across ``jobs`` processes.

    Results are returned in task order regardless of worker count, so
    callers see identical output from serial and parallel runs.  ``fn``
    and the tasks must be picklable when ``jobs > 1``.
    """
    items: Sequence[T] = list(tasks)
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(items) <= 1:
        return [fn(t) for t in items]
    workers = min(jobs, len(items))
    if chunksize is None:
        # ~4 chunks per worker balances scheduling overhead and skew.
        chunksize = max(1, len(items) // (workers * 4))
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init
        ) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, PermissionError):
        # No subprocess support here; fall back to the serial path.
        return [fn(t) for t in items]
