"""Chunked process-pool execution with a deterministic serial fallback.

Every parallel path in the engine funnels through :func:`parallel_map`,
which preserves input order (so results are identical for any worker
count) and degrades to a plain in-process loop when ``jobs <= 1``, when
there is only one task, or when the platform cannot fork worker
processes (sandboxes, restricted CI runners).

The campaign service additionally needs *resilient* dispatch — a task
that hangs or whose worker process dies must cost its own result, never
the whole job.  :func:`resilient_map` submits tasks individually,
bounds each with a timeout, retries a bounded number of times, and
degrades a still-failing task to a :class:`PoisonedTask` marker the
caller turns into poisoned cells.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from typing import Callable, Iterable, Sequence, TypeVar

from ..obs import telemetry

__all__ = ["parallel_map", "resilient_map", "default_jobs", "PoisonedTask"]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0``: the CPU count."""
    return os.cpu_count() or 1


def _worker_init() -> None:
    """Per-worker-process setup.

    Forked workers inherit the parent's telemetry objects; anything
    recorded into those copies would be silently lost.  Resetting here
    makes workers start observably *off*, so telemetry-tagged campaign
    units collect into fresh local bundles and ship snapshots back with
    their results (see :func:`repro.engine.campaign._run_unit`).
    """
    telemetry.reset_worker_state()


def parallel_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: int = 1,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(t) for t in tasks]``, optionally across ``jobs`` processes.

    Results are returned in task order regardless of worker count, so
    callers see identical output from serial and parallel runs.  ``fn``
    and the tasks must be picklable when ``jobs > 1``.
    """
    items: Sequence[T] = list(tasks)
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(items) <= 1:
        return [fn(t) for t in items]
    workers = min(jobs, len(items))
    if chunksize is None:
        # ~4 chunks per worker balances scheduling overhead and skew.
        chunksize = max(1, len(items) // (workers * 4))
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init
        ) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, PermissionError):
        # No subprocess support here; fall back to the serial path.
        return [fn(t) for t in items]


class PoisonedTask:
    """Marker result for a task that kept failing after its retries.

    ``resilient_map`` returns one of these in the failed task's result
    slot instead of raising; ``error`` carries the last failure
    (``"TimeoutError: ..."`` or the worker-death description) and
    ``attempts`` how many times the task ran.
    """

    __slots__ = ("error", "attempts")

    def __init__(self, error: str, attempts: int) -> None:
        self.error = error
        self.attempts = attempts

    def __repr__(self) -> str:
        return f"PoisonedTask(error={self.error!r}, attempts={self.attempts})"


def _serial_resilient(
    fn: Callable[[T], R], items: Sequence[T], retries: int
) -> list:
    """In-process fallback: crashes are caught per task and retried;
    timeouts cannot be enforced without a worker process to abandon."""
    out: list = []
    for item in items:
        attempts = 0
        while True:
            attempts += 1
            try:
                out.append(fn(item))
                break
            except Exception as exc:
                if attempts > retries:
                    out.append(
                        PoisonedTask(f"{type(exc).__name__}: {exc}", attempts)
                    )
                    break
    return out


def resilient_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: int = 1,
    timeout: "float | None" = None,
    retries: int = 1,
) -> list:
    """``[fn(t) for t in tasks]`` where one bad task cannot sink the rest.

    Tasks are submitted to the pool individually.  A task whose worker
    dies, or that is still running ``timeout`` seconds after the pool
    last made progress, is charged an attempt and re-run — up to
    ``retries`` extra times — before degrading to a
    :class:`PoisonedTask` in its result slot.  Results keep task order;
    every slot holds either ``fn``'s return value or a ``PoisonedTask``.

    After a worker death the survivors are re-run in *isolation* (one
    single-worker pool per round), so the culprit is charged precisely
    and innocent tasks complete unharmed.  A hung worker's process is
    abandoned, not joined — the pool is discarded and rebuilt, which
    leaks the stuck process by design (killing it is the OS's job; the
    caller's job must not block on it).

    The in-process fallback (``jobs <= 1`` or no subprocess support)
    retries crashes per task but cannot preempt a hung call — timeouts
    are only enforceable on the pool path.
    """
    items: Sequence[T] = list(tasks)
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(items) <= 1:
        return _serial_resilient(fn, items, retries)

    results: dict[int, object] = {}
    attempts = [0] * len(items)
    errors = [""] * len(items)
    remaining = sorted(range(len(items)))
    isolate = False
    while remaining:
        workers = 1 if isolate else min(jobs, len(remaining))
        batch = remaining[:1] if isolate else list(remaining)
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init
            )
        except (OSError, PermissionError):
            tail = _serial_resilient(
                fn, [items[i] for i in remaining], retries
            )
            for i, value in zip(remaining, tail):
                results[i] = value
            break
        futures = {pool.submit(fn, items[i]): i for i in batch}
        submitted = set(batch)
        for i in batch:
            attempts[i] += 1
        pending = set(futures)
        broken = False
        stalled: list = []
        while pending:
            done, pending = futures_wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # No progress within the budget: every *running* future
                # is over its bound; queued ones are innocent.
                stalled = [f for f in pending if f.running()]
                if stalled:
                    break
                continue  # nothing running yet — keep waiting
            for future in done:
                i = futures[future]
                try:
                    results[i] = future.result()
                except BrokenExecutor:
                    # Once the pool is broken every pending future
                    # resolves with this too — the loop drains fast.
                    broken = True
                except Exception as exc:  # fn itself raised in a worker
                    errors[i] = f"{type(exc).__name__}: {exc}"
        # A hung worker must not block the job: abandon it (the pool is
        # discarded; the stuck process is leaked by design).
        pool.shutdown(wait=not (broken or stalled), cancel_futures=True)
        for future in stalled:
            errors[futures[future]] = (
                f"TimeoutError: no result within {timeout}s"
            )
        if broken:
            if isolate and not errors[batch[0]] and batch[0] not in results:
                # Alone in the pool: the worker death is unambiguously
                # this task's doing.
                errors[batch[0]] = "BrokenExecutor: worker process died"
            # A shared pool's death is ambiguous — leave the survivors
            # unimplicated (they rerun uncharged below) and pin blame by
            # running them one at a time from now on.
            isolate = True
        still = []
        for i in remaining:
            if i in results:
                continue
            if i in submitted and not errors[i]:
                # Submitted but neither finished nor implicated (e.g.
                # cancelled behind a stall or pool death): uncharged.
                attempts[i] -= 1
                still.append(i)
            elif not errors[i]:  # never submitted this round (isolation)
                still.append(i)
            elif attempts[i] > retries:
                results[i] = PoisonedTask(errors[i], attempts[i])
            else:
                errors[i] = ""
                still.append(i)
        remaining = still
    return [results[i] for i in range(len(items))]
