"""Cross-item batched verdict prefill and batch-aware shard assembly.

The campaign engine's unit of work is one (test, checker) cell, but the
corpus-shaped workload is hundreds of *small* tests: each test's
postcondition-filtered candidate stream holds a handful of candidates,
so within-stream chunking (:func:`repro.litmus.candidates.
_batched_consistent_stream`) never accumulates a batch worth kerneling.
The batch dimension that *is* large lives across items: the whole suite
yields hundreds of candidates sharing a universe size.

:func:`prefill_units` exploits that before the per-cell loop runs:

1. **Collect** — for every pending cell whose checker is a plain
   batchable :class:`~repro.engine.checkers.ModelChecker`, pull the
   exact candidate set the scalar verdict quantifies over (the
   postcondition-filtered stream for ``exists``, the refuting candidates
   for ``forall``, the bare execution for execution payloads), bounded
   by :data:`PREFILL_STREAM_CAP`;
2. **Sweep** — bucket every collected execution by universe size, build
   one :class:`~repro.ir.batch.BatchContext` per bucket, and run each
   participating model's compiled plan (:func:`repro.ir.plan.
   consistent_on`) over the *whole bucket* — base-relation packing and
   hash-consed node kernels are paid once per bucket and shared by all
   models;
3. **Assemble** — each cell's verdict is the same quantifier over the
   same candidate set the scalar path uses (``exists``: any consistent
   candidate; ``forall``: no consistent refutation), so the verdicts are
   identical by construction.  Cells whose streams overflowed the cap
   and were not decided by the collected prefix fall back to the
   per-cell path untouched.

On the serial (``jobs == 1``) path the prefill runs once over the whole
suite.  Parallel campaigns and the serve scheduler instead assemble
*batch-aware shards* (:func:`assemble_shards`): units are ordered by
estimated universe size so same-bucket work lands in the same shard,
and every worker runs the same prefill over its whole shard
(:func:`run_shard`) before falling back to the per-cell path for
whatever the prefill left undecided — batched kernels inside every
worker, not just the serial run.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from ..core.execution import Execution
from ..ir.batch import BatchContext
from ..litmus.candidates import batch_size, candidate_executions, expand_test
from ..litmus.test import LitmusTest
from ..obs import trace
from .checkers import Checker, ModelChecker, resolve_checker

__all__ = [
    "PREFILL_STREAM_CAP",
    "KERNEL_CHUNK",
    "prefill_units",
    "assemble_shards",
    "run_shard",
]

#: Per-cell candidate cap for the collect phase: a stream still going
#: after this many (post-filter) candidates is a big test, and big tests
#: are exactly where the per-cell chunked early exit beats speculative
#: full expansion — the cell falls back unless its prefix already
#: decides the verdict.
PREFILL_STREAM_CAP = 256

#: Kernel sweeps over a bucket are chunked at this many executions to
#: bound the live bit-matrix memory (one chunk's arrays are freed before
#: the next is packed).
KERNEL_CHUNK = 1024


_MISSING = object()


class _Cell:
    """One prefill candidate: a pending (item, checker) pair plus the
    candidate set its verdict quantifies over."""

    __slots__ = (
        "name", "spec", "model", "definition", "token", "quantifier",
        "executions", "exhausted",
    )

    def __init__(self, name, checker, definition, token, quantifier):
        self.name = name
        self.spec = checker.spec
        self.model = checker.model
        self.definition = definition
        self.token = token
        self.quantifier = quantifier  # "exec" | "exists" | "forall"
        self.executions: list[Execution] = []
        self.exhausted = False


def _collect_stream(
    candidates: Iterable,
    keep: Callable,
) -> "tuple[list[tuple[Execution, bool]], bool]":
    """The (deduplicated) ``(execution, coherent)`` pairs of the
    candidates passing ``keep``, up to the cap, plus whether the stream
    was exhausted.

    Carrying the structural coherence flag lets one walk serve both the
    gated and ungated checkers of an item: the coherent subset of an
    exhausted stream is itself exhaustive, and an overflowed one is
    (conservatively) undecided for both gates.
    """
    pairs: list[tuple[Execution, bool]] = []
    seen: set[Execution] = set()
    count = 0
    for candidate in candidates:
        if keep is not None and not keep(candidate):
            continue
        count += 1
        if count > PREFILL_STREAM_CAP:
            return pairs, False  # overflow
        x = candidate.execution
        if x not in seen:
            seen.add(x)
            pairs.append((x, candidate.coherent))
    return pairs, True


def _resolve_batchable(entry, cache):
    """``(checker, definition, token, gate)`` for a batchable plain
    :class:`ModelChecker` entry, else ``None`` — computed once per
    distinct entry, not once per (unit, entry)."""
    from .campaign import _definition_token

    key = id(entry)
    if key in cache:
        return cache[key]
    checker = entry if isinstance(entry, Checker) else resolve_checker(entry)
    out = None
    if type(checker) is ModelChecker:  # oracle/brute-force keep their path
        try:
            definition = checker.model.batch_definition()
        except Exception:
            definition = None
        if definition is not None:
            gate = getattr(checker.model, "enforces_coherence", False)
            out = (checker, definition, _definition_token(checker), gate)
    cache[key] = out
    return out


def _collect(units) -> list[_Cell]:
    cells: list[_Cell] = []
    resolved: dict = {}
    for name, payload, checkers, _telemetry in units:
        # Checkers of one item share the candidate stream; walking it
        # (and applying the postcondition) once per *quantifier*, not
        # once per checker or per coherence gate, matters on suites of
        # hundreds of small tests.  ``prefixes`` maps a quantifier to
        # ``(pairs, exhausted, per-gate executions)``.
        prefixes: dict[str, tuple | None] = {}
        for entry in checkers:
            batchable = _resolve_batchable(entry, resolved)
            if batchable is None:
                continue
            checker, definition, token, gate = batchable
            if isinstance(payload, Execution):
                cell = _Cell(name, checker, definition, token, "exec")
                cell.executions.append(payload)
                cell.exhausted = True
                cells.append(cell)
                continue
            if not isinstance(payload, LitmusTest):
                continue
            quantifier = (
                "forall" if payload.quantifier == "forall" else "exists"
            )
            prefix = prefixes.get(quantifier, _MISSING)
            if prefix is _MISSING:
                try:
                    if quantifier == "forall":
                        # The scalar path's skip: only candidates
                        # *refuting* the condition can decide the
                        # verdict.
                        prefix = _collect_stream(
                            candidate_executions(payload.program),
                            lambda c: not payload.check(c.outcome),
                        ) + ({},)
                    else:
                        prefix = _collect_stream(
                            iter(expand_test(payload, False)), None
                        ) + ({},)
                except Exception:
                    # Fall back: the per-cell path reports the error.
                    prefix = None
                prefixes[quantifier] = prefix
            if prefix is None:
                continue
            pairs, exhausted, by_gate = prefix
            executions = by_gate.get(gate)
            if executions is None:
                by_gate[gate] = executions = [
                    x for x, coherent in pairs if coherent or not gate
                ]
            cell = _Cell(name, checker, definition, token, quantifier)
            cell.executions = executions
            cell.exhausted = exhausted
            cells.append(cell)
    return cells


def prefill_units(units):
    """Batched verdicts for the cells of ``units`` decidable up front.

    Returns ``(rows, covered)``: cell rows in the campaign's result-row
    shape ``(name, spec, verdict, elapsed, None)`` and the set of
    ``(name, spec)`` pairs they cover; every uncovered pending cell must
    still go through the per-cell path.  A no-op (empty results) when
    batching is off.
    """
    if batch_size() <= 1:
        return [], set()
    start = time.perf_counter()
    cells = _collect(units)
    if not cells:
        return [], set()

    # -- bucket every execution by universe size ------------------------
    buckets: dict[int, dict[Execution, int]] = {}
    sweeps: dict[int, list[tuple[str, object, object]]] = {}
    swept: set[tuple[str, int]] = set()
    for cell in cells:
        for x in cell.executions:
            index = buckets.setdefault(x.n, {})
            if x not in index:
                index[x] = len(index)
            key = (cell.spec, x.n)
            if key not in swept:
                swept.add(key)
                sweeps.setdefault(x.n, []).append(
                    (cell.spec, cell.model, cell.definition)
                )

    # -- one context per bucket chunk, every model's plan over it --------
    from ..ir.plan import consistent_on

    flags: dict[str, dict[Execution, bool]] = {}
    broken: set[str] = set()
    for n, index in buckets.items():
        stack = list(index)
        for lo in range(0, len(stack), KERNEL_CHUNK):
            chunk = stack[lo : lo + KERNEL_CHUNK]
            ctx = BatchContext.of(chunk)
            for spec, model, definition in sweeps[n]:
                if spec in broken:
                    continue
                try:
                    out = consistent_on(model, definition, ctx)
                except Exception:
                    # The per-cell fallback will reproduce (and report)
                    # the failure for exactly the affected cells.
                    broken.add(spec)
                    flags.pop(spec, None)
                    continue
                table = flags.setdefault(spec, {})
                for x, flag in zip(chunk, out):
                    table[x] = bool(flag)

    # -- assemble verdicts ----------------------------------------------
    decided: list[tuple[str, str, bool, str]] = []
    for cell in cells:
        table = flags.get(cell.spec)
        if table is None:
            continue
        hit = any(table[x] for x in cell.executions)
        if cell.quantifier == "forall":
            if hit:  # a consistent refutation
                verdict = False
            elif cell.exhausted:
                verdict = True
            else:
                continue  # undecided prefix: fall back
        else:  # "exists" and bare executions alike
            if hit:
                verdict = True
            elif cell.exhausted:
                verdict = False
            else:
                continue
        decided.append((cell.name, cell.spec, verdict, cell.token))

    if not decided:
        return [], set()
    # Apportion the sweep time evenly: per-cell attribution below batch
    # granularity is not meaningful, but model_time() should still add
    # up to wall-clock spent.
    elapsed = (time.perf_counter() - start) / len(decided)
    tracer = trace.ACTIVE
    if tracer is not None:
        # Telemetry composes with batching: one synthetic span per
        # decided cell, carrying the same identity attributes as the
        # scalar path's real spans.  Self time is 0.0 — the sweep's
        # wall clock is already partitioned into the expansion/axioms
        # stage spans recorded while it ran.
        for name, spec, _verdict, token in decided:
            tracer.add_span(
                "cell",
                elapsed,
                {"item": name, "model": spec, "token": token,
                 "batched": True},
                self_seconds=0.0,
            )
    rows = [
        (name, spec, verdict, elapsed, None)
        for name, spec, verdict, _token in decided
    ]
    return rows, {(name, spec) for name, spec, _, _ in decided}


# ----------------------------------------------------------------------
# Batch-aware sharding (parallel campaigns and the serve scheduler)
# ----------------------------------------------------------------------


def _spec_of(entry) -> str:
    return entry.spec if isinstance(entry, Checker) else str(entry)


def _unit_size(unit) -> int:
    """Cheap, deterministic universe-size proxy for shard grouping.

    The prefill kernels batch executions sharing an exact universe size
    ``n``; that size is only known after candidate expansion, which is
    far too expensive for shard assembly.  Executions carry it directly;
    for litmus tests the program's instruction count tracks it closely
    enough that equal-sized tests (the common corpus case: generated
    families share a shape) sort into the same shard.
    """
    payload = unit[1]
    if isinstance(payload, Execution):
        return payload.n
    if isinstance(payload, LitmusTest):
        return sum(len(t) for t in payload.program.threads)
    return 0


def assemble_shards(units, n_shards: int) -> list[list]:
    """Partition ``units`` into at most ``n_shards`` batch-friendly
    shards.

    Units are ordered by estimated universe size (:func:`_unit_size`,
    name-tiebroken so the partition is deterministic) and cut into
    *contiguous* chunks balanced by pending-cell count: same-bucket
    units land in the same shard, so each worker's
    :func:`prefill_units` sweep sees whole buckets instead of the
    round-robin scatter that left every worker with one-execution
    contexts.  Every returned shard is non-empty.
    """
    units = list(units)
    if not units:
        return []
    n_shards = max(1, min(n_shards, len(units)))
    if n_shards == 1:
        return [units]
    ordered = sorted(units, key=lambda u: (_unit_size(u), u[0]))
    weights = [len(u[2]) or 1 for u in ordered]
    total = sum(weights)
    shards: list[list] = [[] for _ in range(n_shards)]
    si = 0
    acc = 0
    for i, unit in enumerate(ordered):
        if shards[si] and si + 1 < n_shards:
            remaining = len(ordered) - i
            # Advance when this shard met its proportional share of the
            # cell weight — or must, so no later shard ends up empty.
            forced = remaining == n_shards - si - 1
            due = (
                acc >= total * (si + 1) / n_shards
                and remaining >= n_shards - si
            )
            if forced or due:
                si += 1
        shards[si].append(unit)
        acc += weights[i]
    return shards


def _shard_rows(shard) -> list:
    """Cell rows for one shard: the batched prefill over the whole
    shard, then the per-cell path for whatever it left undecided."""
    from .campaign import _run_checkers

    try:
        prefilled, covered = prefill_units(shard)
    except Exception:
        # The prefill is an optimisation; a crash in it must never cost
        # verdicts.  Every cell falls back to the per-cell path.
        prefilled, covered = [], set()
    rows = list(prefilled)
    for name, payload, entries, _telemetry in shard:
        pending = (
            tuple(
                entry
                for entry in entries
                if (name, _spec_of(entry)) not in covered
            )
            if covered
            else entries
        )
        if not pending:
            continue
        try:
            rows.extend(_run_checkers(name, payload, pending))
        except Exception as exc:
            # A crash outside the checkers (expansion, resolution)
            # poisons exactly this unit's cells, like the serial loop.
            rows.extend(
                (
                    name,
                    _spec_of(entry),
                    False,
                    0.0,
                    f"{type(exc).__name__}: {exc}",
                )
                for entry in pending
            )
    return rows


def run_shard(shard) -> list:
    """One pool task: a shard's units through the batched prefill plus
    the per-cell fallback.

    Module-level so it pickles.  Returns ``(rows, telemetry-snapshot)``
    pairs in the same shape the per-unit task produces, so result loops
    consume either interchangeably; the whole shard shares one
    telemetry collection (the prefill's synthetic per-cell spans are
    indistinguishable from per-unit ones downstream).
    """
    if not shard:
        return []
    if shard[0][3]:  # telemetry_on — uniform across a dispatch
        from ..obs import telemetry as obs_telemetry

        with obs_telemetry.collect() as holder:
            rows = _shard_rows(shard)
        return [(rows, holder.snapshot)]
    return [(_shard_rows(shard), None)]
