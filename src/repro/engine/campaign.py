"""The campaign runner: suites × models, cached and parallel.

A *campaign* executes the full cross-product of an iterable of litmus
tests (or bare executions) against a set of checkers — native models,
.cat library models, or simulated hardware — the way herd/diy sweep a
directory of tests against a model file.  Three mechanisms make the
cross-product cheap:

1. work is grouped *by test*, so the *memoized* candidate expansion
   (:func:`repro.litmus.candidates.expand_program`) runs once per test
   however many models are swept;
2. every (test, model) cell is keyed by a content hash and served from
   the persistent :class:`~repro.engine.cache.ResultCache` when it has
   been computed before — re-runs are incremental;
3. cache misses are dispatched to a chunked worker pool
   (:func:`~repro.engine.pool.parallel_map`) with a deterministic
   serial fallback — the verdict matrix is identical for any ``jobs``.

:func:`run_campaign` returns a :class:`CampaignResult` with per-model
verdict matrices, timing, cache accounting, and diff-vs-expected
summaries.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.execution import Execution
from ..litmus.candidates import batch_size
from ..litmus.test import LitmusTest
from ..obs import metrics as obs_metrics
from ..obs import telemetry as obs_telemetry
from ..obs import trace
from .cache import NullCache, ResultCache, cache_key, fingerprint
from .checkers import Checker, resolve_checker
from .pool import default_jobs, parallel_map

__all__ = [
    "CampaignItem",
    "CellResult",
    "CampaignResult",
    "run_campaign",
    "catalog_suite",
    "diy_suite",
    "litmus_suite",
    "execution_suite",
]


@dataclass
class CampaignItem:
    """One unit of a campaign suite.

    Attributes:
        name: display name (unique within the suite).
        payload: a :class:`LitmusTest` (verdict = "postcondition
            observable?") or an :class:`Execution` (verdict =
            "consistent?").
        expected: optional model-name → expected-verdict map used for
            the diff-vs-expected report.
    """

    name: str
    payload: LitmusTest | Execution
    expected: dict[str, bool] = field(default_factory=dict)


class CellResult:
    """One (test, model) cell of the verdict matrix.

    ``error`` carries the ``"ExcType: message"`` string of a checker
    that raised instead of producing a verdict (the verdict is then
    ``False`` by convention and the cell is never cached).

    A plain slotted class rather than a frozen dataclass: a campaign
    allocates one per cell, and frozen-dataclass ``__init__`` overhead
    is measurable at thousands of cells.  Treat instances as immutable.
    """

    __slots__ = ("verdict", "elapsed", "cached", "error")

    def __init__(
        self,
        verdict: bool,
        elapsed: float,
        cached: bool,
        error: str | None = None,
    ) -> None:
        self.verdict = verdict
        self.elapsed = elapsed
        self.cached = cached
        self.error = error

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CellResult):
            return NotImplemented
        return (
            self.verdict == other.verdict
            and self.elapsed == other.elapsed
            and self.cached == other.cached
            and self.error == other.error
        )

    def __hash__(self) -> int:
        # Defining __eq__ alone would set __hash__ = None; cells are
        # value objects and must stay usable in sets and as dict keys.
        return hash((self.verdict, self.elapsed, self.cached, self.error))

    def __repr__(self) -> str:
        return (
            f"CellResult(verdict={self.verdict!r}, elapsed={self.elapsed!r},"
            f" cached={self.cached!r}, error={self.error!r})"
        )


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    item_names: list[str]
    model_specs: list[str]
    cells: dict[tuple[str, str], CellResult]
    elapsed: float
    cache_hits: int
    cache_misses: int

    # -- views ----------------------------------------------------------

    def verdict(self, item: str, model: str) -> bool:
        return self.cells[(item, model)].verdict

    def matrix(self) -> dict[str, dict[str, bool]]:
        """Per-model verdict maps: ``matrix()[model][item] -> bool``."""
        return {
            spec: {
                name: self.cells[(name, spec)].verdict
                for name in self.item_names
            }
            for spec in self.model_specs
        }

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def model_time(self, model: str) -> float:
        """Total compute seconds spent on one model's column."""
        return sum(
            cell.elapsed
            for (_, spec), cell in self.cells.items()
            if spec == model and not cell.cached
        )

    def errors(self) -> list[tuple[str, str, str]]:
        """``(item, model, error)`` rows for every cell whose checker
        raised instead of producing a verdict."""
        return [
            (name, spec, cell.error)
            for (name, spec), cell in sorted(self.cells.items())
            if cell.error is not None
        ]

    def diffs(self, items: Sequence[CampaignItem]) -> list[tuple[str, str, bool, bool]]:
        """(item, model, got, expected) rows where the verdict disagrees
        with the item's expectation (models without expectations skip)."""
        out = []
        by_name = {item.name: item for item in items}
        for (name, spec), cell in sorted(self.cells.items()):
            item = by_name.get(name)
            if item is None:
                continue
            expected = item.expected.get(spec)
            if expected is None and "!" not in spec:
                # hw:/cat: specs fall back to the registry name; !notm
                # baselines don't (expectations are for the TM models).
                expected = item.expected.get(_base_model_name(spec))
            if expected is not None and expected != cell.verdict:
                out.append((name, spec, cell.verdict, expected))
        return out

    # -- rendering -------------------------------------------------------

    def format_matrix(self) -> str:
        """The verdict matrix as text: one row per test, one column per
        model; ``A`` = observable/consistent, ``F`` = forbidden."""
        name_width = max((len(n) for n in self.item_names), default=4)
        name_width = max(name_width, 4)
        widths = [max(len(s), 1) for s in self.model_specs]
        header = "test".ljust(name_width) + "".join(
            f"  {s:>{w}}" for s, w in zip(self.model_specs, widths)
        )
        lines = [header, "-" * len(header)]
        for name in self.item_names:
            row = name.ljust(name_width)
            for spec, w in zip(self.model_specs, widths):
                cell = self.cells[(name, spec)]
                mark = "!" if cell.error else "A" if cell.verdict else "F"
                row += f"  {mark:>{w}}"
            lines.append(row)
        lines.append("(A = observable/consistent, F = forbidden, ! = error)")
        return "\n".join(lines)

    def to_json_dict(
        self, items: "Sequence[CampaignItem] | None" = None
    ) -> dict:
        """The machine-readable run record behind ``campaign --json``:
        verdict matrix, per-cell detail, diffs, errors, cache and timing
        aggregates — so CI consumes structured output instead of
        grepping the human-format matrix."""
        out = {
            "schema": "repro.campaign-result",
            "version": 1,
            "items": list(self.item_names),
            "models": list(self.model_specs),
            "matrix": self.matrix(),
            "cells": [
                {
                    "item": name,
                    "model": spec,
                    "verdict": cell.verdict,
                    "elapsed": round(cell.elapsed, 6),
                    "cached": cell.cached,
                    "error": cell.error,
                }
                for (name, spec), cell in sorted(self.cells.items())
            ],
            "elapsed_seconds": round(self.elapsed, 6),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.hit_rate, 6),
            },
            "model_seconds": {
                spec: round(self.model_time(spec), 6)
                for spec in self.model_specs
            },
            "errors": [
                {"item": name, "model": spec, "error": message}
                for name, spec, message in self.errors()
            ],
        }
        if items is not None:
            out["diffs"] = [
                {
                    "item": name,
                    "model": spec,
                    "got": got,
                    "expected": expected,
                }
                for name, spec, got, expected in self.diffs(items)
            ]
        return out

    def summary(self) -> str:
        computed = self.cache_misses
        errors = sum(1 for cell in self.cells.values() if cell.error)
        suffix = f", {errors} checker errors" if errors else ""
        return (
            f"{len(self.item_names)} tests x {len(self.model_specs)} models "
            f"= {len(self.cells)} cells ({self.cache_hits} cached, "
            f"{computed} computed) in {self.elapsed:.2f}s "
            f"[{100 * self.hit_rate:.0f}% cache hits]{suffix}"
        )


def _base_model_name(spec: str) -> str:
    """The registry name behind a spec, for expected-verdict lookups:
    ``hw:x86:<oracle>`` → ``x86``, ``cat:x86`` → ``x86``, the bare .cat
    stem ``x86tm`` → ``x86``, ``brute:x86`` → ``x86``,
    ``mut:armv8:<axiom>`` → ``armv8`` (a mutant *should* diff against
    the stock expectations — that is what detection means)."""
    from ..cat.model import CAT_MODEL_FILES

    if spec.startswith(("hw:", "mut:")):
        return spec.split(":")[1]
    if spec.startswith("brute:"):
        return spec[6:]
    name = spec[4:] if spec.startswith("cat:") else spec
    if name in CAT_MODEL_FILES:
        return name
    for registry_name, filename in CAT_MODEL_FILES.items():
        if filename in (name, f"{name}.cat"):
            return registry_name
    return name


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------


#: Per-process memo of checker definition tokens (sha over a model's
#: definition); keys cell spans without rehashing per cell.
_TOKEN_CACHE: dict[str, str] = {}


def _definition_token(checker: Checker) -> str:
    token = _TOKEN_CACHE.get(checker.spec)
    if token is None:
        token = _TOKEN_CACHE[checker.spec] = checker.definition_hash()
    return token


def _run_checkers(
    name: str,
    payload: LitmusTest | Execution,
    checkers: tuple[str | Checker, ...],
) -> list[tuple[str, str, bool, float, str | None]]:
    """Evaluate one test against several checkers.

    Grouping by test means the candidate expansion is computed once and
    shared by every checker via the per-process memo.  Checkers arrive
    as spec strings (resolved locally, memoized per process) or as
    ready-made :class:`Checker` instances.

    A checker that raises yields an errored cell instead of killing the
    whole campaign — one bad (test, model) pair must not lose the other
    verdicts of a long sweep.  The error is reported per cell and the
    campaign's consumer decides (the CLI exits nonzero).
    """
    out = []
    for entry in checkers:
        checker = entry if isinstance(entry, Checker) else resolve_checker(entry)
        tracer = trace.ACTIVE
        if tracer is not None:
            tracer.push(
                "cell",
                {
                    "item": name,
                    "model": checker.spec,
                    "token": _definition_token(checker),
                },
            )
        start = time.perf_counter()
        try:
            verdict = checker.verdict(payload)
            error = None
        except Exception as exc:
            verdict = False
            error = f"{type(exc).__name__}: {exc}"
        finally:
            if tracer is not None:
                tracer.pop()
        out.append(
            (name, checker.spec, verdict, time.perf_counter() - start, error)
        )
    return out


def _run_unit(
    unit: tuple[str, LitmusTest | Execution, tuple[str | Checker, ...], bool],
) -> tuple[list[tuple[str, str, bool, float, str | None]], dict | None]:
    """One worker task: run the unit's checkers, ship telemetry home.

    When the parent ran with telemetry enabled the unit is tagged; a
    pool worker (whose telemetry state was reset by the worker
    initializer) then collects spans/metrics into an ephemeral local
    bundle and returns its snapshot alongside the cell rows, so
    worker-side stage time is merged fleet-wide instead of dropped.  On
    the serial path :func:`repro.obs.telemetry.collect` is a no-op —
    the parent's own collectors see the work directly.
    """
    name, payload, checkers, telemetry_on = unit
    if telemetry_on:
        with obs_telemetry.collect() as holder:
            rows = _run_checkers(name, payload, checkers)
        return rows, holder.snapshot
    return _run_checkers(name, payload, checkers), None


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_campaign(
    items: Iterable[CampaignItem],
    models: Sequence[str | Checker],
    jobs: int = 1,
    cache: ResultCache | NullCache | None = None,
) -> CampaignResult:
    """Execute the items × models cross-product.

    Args:
        items: the suite (see the ``*_suite`` constructors below).
        models: checker specs (:func:`~repro.engine.checkers.resolve_checker`)
            or ready-made :class:`Checker` instances.
        jobs: worker processes; ``1`` = deterministic serial run in this
            process, ``0`` = one per CPU.
        cache: persistent store; ``None`` disables caching.
    """
    items = list(items)
    checkers = list(models)
    for entry in checkers:
        if not isinstance(entry, Checker):
            resolve_checker(entry)  # fail fast on bad specs, before forking
    models = [
        entry.spec if isinstance(entry, Checker) else entry
        for entry in checkers
    ]
    if len(set(models)) != len(models):
        raise ValueError(f"duplicate model specs in {models}")
    by_spec = dict(zip(models, checkers))
    cache = cache if cache is not None else NullCache()
    start = time.perf_counter()

    names = []
    seen_names = set()
    for item in items:
        if item.name in seen_names:
            raise ValueError(f"duplicate campaign item name {item.name!r}")
        seen_names.add(item.name)
        names.append(item.name)

    cells: dict[tuple[str, str], CellResult] = {}
    hits = 0
    pending: dict[str, list[str]] = {}
    keys: dict[tuple[str, str], str] = {}
    caching = not isinstance(cache, NullCache)
    definitions = (
        {
            spec: _definition_token(
                entry if isinstance(entry, Checker) else resolve_checker(entry)
            )
            for spec, entry in by_spec.items()
        }
        if caching
        else {}
    )
    for item in items:
        # Fingerprinting is the expensive per-item step; skip it
        # entirely on uncached runs.
        if caching:
            with trace.stage("cache"):
                item_fp = fingerprint(item.payload)
        else:
            item_fp = None
        for spec in models:
            record = None
            if caching:
                with trace.stage("cache"):
                    key = cache_key(item_fp, spec, definitions[spec])
                    keys[(item.name, spec)] = key
                    record = cache.get(key)
            if record is not None:
                hits += 1
                cells[(item.name, spec)] = CellResult(
                    bool(record["verdict"]),
                    float(record.get("elapsed", 0.0)),
                    cached=True,
                )
            else:
                pending.setdefault(item.name, []).append(spec)

    telemetry_on = trace.ACTIVE is not None
    units = [
        (
            item.name,
            item.payload,
            tuple(by_spec[spec] for spec in pending[item.name]),
            telemetry_on,
        )
        for item in items
        if item.name in pending
    ]

    # Cross-item batched prefill (serial path): cells whose quantifier
    # is decidable from a bounded candidate prefix are verdict-ed in
    # universe-size buckets spanning the whole suite, so the compiled
    # batch plans see hundreds of candidates per kernel call instead of
    # one small test's worth.  Telemetry composes: the prefill records
    # one synthetic per-cell span per decided cell (apportioned sweep
    # time, same item/model/token attributes as the scalar path), and
    # the result loop below feeds the same rows into the per-model
    # latency histograms.
    prefilled: list = []
    if units and jobs == 1:
        from .batchsweep import prefill_units

        prefilled, covered = prefill_units(units)
        if covered:
            units = [
                (
                    name,
                    payload,
                    tuple(
                        entry
                        for entry in specs
                        if (
                            name,
                            entry.spec
                            if isinstance(entry, Checker)
                            else entry,
                        )
                        not in covered
                    ),
                    tel,
                )
                for name, payload, specs, tel in units
            ]
            units = [unit for unit in units if unit[2]]
    misses = sum(len(specs) for _, _, specs, _ in units) + len(prefilled)

    registry = obs_metrics.ACTIVE
    if jobs != 1 and len(units) > 1 and batch_size() > 1:
        # Batch-aware sharding (parallel path): instead of streaming
        # one unit per pool task — which would leave every worker's
        # prefill with a single item's worth of candidates — group
        # same-universe units into contiguous shards and run the same
        # cross-item prefill *inside each worker* over its whole shard.
        # Each worker task returns the per-unit (rows, snapshot) shape,
        # so the result loop below is shared with the per-unit path.
        from .batchsweep import assemble_shards, run_shard

        effective = jobs if jobs > 0 else default_jobs()
        shards = assemble_shards(units, max(1, 4 * effective))
        results = itertools.chain.from_iterable(
            parallel_map(run_shard, shards, jobs=jobs, chunksize=1)
        )
    else:
        results = parallel_map(_run_unit, units, jobs=jobs)
    if prefilled:
        results = itertools.chain([(prefilled, None)], results)
    for rows, snap in results:
        # Worker-side telemetry (stage self-times, per-cell spans, IR
        # counters) comes home with the chunk results; merging it here
        # is what makes ``--profile``/manifests see ProcessPool time.
        if snap is not None:
            obs_telemetry.merge_snapshot(snap)
        for name, spec, verdict, elapsed, error in rows:
            cells[(name, spec)] = CellResult(
                verdict, elapsed, cached=False, error=error
            )
            if registry is not None and error is None:
                # Parent-side observation keeps latency percentiles
                # exact for serial and parallel runs alike.
                registry.histogram(f"cell_seconds:{spec}").observe(elapsed)
            if error is not None:
                continue  # never cache a crash as a verdict
            if caching:
                with trace.stage("cache"):
                    cache.put(
                        keys[(name, spec)],
                        {
                            "verdict": verdict,
                            "elapsed": round(elapsed, 6),
                            "item": name,
                            "model": spec,
                        },
                    )

    if telemetry_on:
        trace.count("cells_computed", misses)
        trace.count("cells_cached", hits)
        if registry is not None and caching and hasattr(cache, "stats_dict"):
            stats = cache.stats_dict()
            registry.counter("cache_hits").inc(hits)
            registry.counter("cache_misses").inc(misses)
            registry.gauge("cache_entries").set(stats["entries"])
            registry.gauge("cache_bytes").set(stats["bytes"])

    return CampaignResult(
        item_names=names,
        model_specs=models,
        cells=cells,
        elapsed=time.perf_counter() - start,
        cache_hits=hits,
        cache_misses=misses,
    )


# ----------------------------------------------------------------------
# Suite constructors
# ----------------------------------------------------------------------


def catalog_suite(
    names: Iterable[str] | None = None, tags: Iterable[str] | None = None
) -> list[CampaignItem]:
    """Catalog entries as campaign items (payload = the execution)."""
    from ..catalog import CATALOG

    wanted = set(names) if names is not None else None
    tagset = set(tags) if tags is not None else None
    out = []
    for name, entry in sorted(CATALOG.items()):
        if wanted is not None and name not in wanted:
            continue
        if tagset is not None and not (tagset & entry.tags):
            continue
        out.append(CampaignItem(name, entry.execution, dict(entry.expected)))
    return out


def diy_suite(
    arch: str,
    vocabulary: Sequence[str] | None = None,
    max_length: int = 3,
) -> list[CampaignItem]:
    """A synthesized diy suite rendered as litmus tests for ``arch``.

    Each critical cycle over the vocabulary becomes one litmus test via
    :func:`~repro.litmus.from_execution.to_litmus`, so campaign verdicts
    have :func:`~repro.litmus.candidates.observable` semantics.
    """
    from ..litmus.from_execution import to_litmus
    from ..synth.diy import cycle_execution, enumerate_cycles

    vocabulary = list(
        vocabulary or ("PodWR", "PodWW", "PodRR", "PodRW", "Rfe", "Fre", "Wse")
    )
    out = []
    for cycle in enumerate_cycles(vocabulary, max_length):
        name = "diy-" + "+".join(e.name for e in cycle.edges)
        test = to_litmus(cycle_execution(cycle), name, arch)
        out.append(CampaignItem(name, test))
    return out


def litmus_suite(paths: Iterable[str]) -> list[CampaignItem]:
    """Litmus files as campaign items, auto-detecting the format.

    Both the neutral format and the herd-style dialect frontends
    (:mod:`repro.litmus.frontend`) are accepted; a ``~exists`` condition
    records the expectation that the test is *forbidden* under its
    architecture's model, so the campaign's diff report flags any model
    that observes it.
    """
    from ..litmus.frontend import load_litmus_file
    from ..models.registry import MODELS

    out = []
    names: dict[str, int] = {}
    for path in paths:
        test = load_litmus_file(path)
        name = test.name
        if name in names:
            # Same test name in several files (common across dialect
            # directories): qualify by occurrence to keep items unique.
            names[name] += 1
            name = f"{name}~{names[test.name]}"
        else:
            names[name] = 0
        expected = (
            {test.arch: False}
            if test.quantifier == "~exists" and test.arch in MODELS
            else {}
        )
        out.append(CampaignItem(name, test, expected))
    return out


def execution_suite(
    executions: Iterable[Execution], prefix: str = "exec"
) -> list[CampaignItem]:
    """Bare executions (e.g. a synthesis result's Forbid/Allow lists)."""
    return [
        CampaignItem(f"{prefix}-{i}", x) for i, x in enumerate(executions)
    ]
