"""Memoizing model wrapper: the engine's hook into the synthesis loops.

The synthesizer and the experiment harnesses call ``model.consistent``
on millions of candidate executions, and the same execution recurs many
times (minimality probes re-check every weakening; Allow derivation
re-checks the weakenings again; baseline and transactional sweeps share
executions).  :class:`MemoModel` wraps any
:class:`~repro.models.base.MemoryModel` with an in-memory verdict memo
keyed by the execution's structural identity, optionally backed by the
persistent campaign cache so repeated experiment runs are incremental.
"""

from __future__ import annotations

from ..core.execution import Execution
from ..models.base import Axiom, MemoryModel, Verdict
from ..obs import trace
from .cache import NullCache, ResultCache, cache_key, fingerprint

__all__ = ["MemoModel"]

#: In-memory memo bound; past this the memo resets (enumeration passes
#: see each execution once, so an unbounded memo would just pin them).
_MEMO_LIMIT = 1 << 16


class MemoModel(MemoryModel):
    """A consistency-memoizing proxy for another memory model.

    ``consistent`` is served from (1) the in-memory memo, then (2) the
    persistent cache when one is given, then computed.  ``check`` and
    ``relations`` always delegate (verdict objects carry witnesses that
    the cache does not store).
    """

    def __init__(
        self,
        model: MemoryModel,
        cache: ResultCache | NullCache | None = None,
    ) -> None:
        from .checkers import definition_hash

        super().__init__(tm=model.tm)
        self.model = model
        self.arch = model.arch
        # Candidate streams gate on this flag; the proxy must mirror it.
        self.enforces_coherence = getattr(model, "enforces_coherence", False)
        # The definition hash keeps persistently cached verdicts honest:
        # editing the wrapped model's axioms invalidates them.
        self.spec = f"consistent:{model.name}@{definition_hash(model)}"
        self.cache = cache if cache is not None else NullCache()
        self._memo: dict[Execution, bool] = {}

    # Delegated surface --------------------------------------------------

    def relations(self, x: Execution):
        return self.model.relations(x)

    def axioms(self) -> tuple[Axiom, ...]:
        return self.model.axioms()

    def check(self, x: Execution) -> Verdict:
        return self.model.check(x)

    def definition_token(self) -> str:
        """Delegate cache keying to the wrapped model's definition (the
        proxy adds no semantics of its own)."""
        from .checkers import definition_hash

        return f"memo:{definition_hash(self.model)}"

    # Memoized hot path --------------------------------------------------

    def consistent(self, x: Execution) -> bool:
        hit = self._memo.get(x)
        if hit is not None:
            if trace.ACTIVE is not None:
                trace.ACTIVE.count("memo_model_hits")
            return hit
        key = None
        if not isinstance(self.cache, NullCache):
            key = cache_key(fingerprint(x), self.spec)
            record = self.cache.get(key)
            if record is not None:
                if trace.ACTIVE is not None:
                    trace.ACTIVE.count("memo_persistent_hits")
                verdict = bool(record["verdict"])
                self._memo[x] = verdict
                return verdict
        if trace.ACTIVE is not None:
            trace.ACTIVE.count("memo_model_misses")
        verdict = self.model.consistent(x)
        if len(self._memo) >= _MEMO_LIMIT:
            self._memo.clear()
        self._memo[x] = verdict
        if key is not None:
            self.cache.put(key, {"verdict": verdict, "model": self.spec})
        return verdict

    @property
    def memo_size(self) -> int:
        return len(self._memo)
