"""The shared candidate-analysis layer.

Checking one candidate execution against many models (the herd-style
campaign workload: tables 1–2, fig 7) repeatedly needs the same base
relations — ``po``, ``rf``, ``co``, ``fr``, ``loc``, internal/external
restrictions, dependency relations, the committed-transaction lifting
(``stxn``/``stxnat``/``tfence``) — plus a handful of recurring derived
values (event-set lifts, fence relations, ``acyclic(po_loc ∪ com)``'s
operand, the lifted isolation relations).  Before this layer existed
every model (and the ``.cat`` evaluator's environment bootstrap)
re-derived them from the raw :class:`~repro.core.execution.Execution`.

:class:`CandidateAnalysis` is computed **once per candidate** and
memoizes everything lazily:

* the :class:`~repro.core.execution.Execution`'s own cached derived
  relations are exposed under the same names, so model code reads
  naturally;
* :meth:`lift`, :meth:`cross`, :meth:`fence_rel`, :meth:`labelled`,
  :meth:`stronglift`, :meth:`weaklift` memoize the helper values models
  build over and over;
* :meth:`memo` lets models share arbitrary derived relations by name —
  ``coherence`` and ``rmw_isol`` (identical in every architecture
  model) and the heavy ``power_ppo``/``riscv_ppo`` fixpoints are
  computed once per candidate however many models are swept;
* :attr:`baseline` is the ``tm=False`` view: the same analysis with the
  transactional structure erased.  It *shares* every
  transaction-independent value with the parent (``memo(...,
  txn_free=True)``), so a campaign mixing ``x86`` and ``x86!notm``
  derives ``po``/``fr``/``ppo``/… exactly once.

Analyses attach to the execution (``Execution`` instances are immutable
and shared across checkers via the memoized candidate expansion), so a
campaign's checkers — native Python models, ``.cat`` models, ``!notm``
baselines — all see one analysis per candidate.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from ..obs import trace
from .events import Label
from .execution import Execution
from .lifting import stronglift as _stronglift
from .lifting import weaklift as _weaklift
from .relation import Relation

__all__ = ["CandidateAnalysis", "analyze"]

V = TypeVar("V")

#: Execution attributes exposed verbatim (all transaction-independent).
_DELEGATED = (
    "n",
    "events",
    "threads",
    "reads",
    "writes",
    "fences",
    "calls",
    "accesses",
    "locations",
    "tid_of",
    "po",
    "rf",
    "co",
    "rf_rel",
    "co_rel",
    "addr_rel",
    "data_rel",
    "ctrl_rel",
    "rmw_rel",
    "sloc",
    "sthd",
    "fr",
    "com",
    "rfe",
    "rfi",
    "coe",
    "coi",
    "fre",
    "fri",
    "come",
    "po_loc",
)


class CandidateAnalysis:
    """Lazily memoized base relations of one candidate execution.

    Do not construct directly — use :meth:`of` (or :func:`analyze`),
    which attaches the analysis to the execution so every consumer of
    the same candidate shares one instance.
    """

    __slots__ = ("x", "_memo", "_parent", "_baseline", "_ir_memo")

    def __init__(
        self, x: Execution, _parent: "CandidateAnalysis | None" = None
    ) -> None:
        self.x = x
        self._memo: dict = {}
        self._parent = _parent
        self._baseline: CandidateAnalysis | None = None
        #: Values of IR nodes, keyed by node id (int) — a dedicated dict
        #: because the IR engine is the hottest memo client by far (one
        #: lookup per node per model sweep); txn-free nodes of a
        #: baseline view are stored on the parent's dict instead (see
        #: :func:`repro.ir.eval.evaluate`).
        self._ir_memo: dict = {}

    @classmethod
    def of(cls, x: "Execution | CandidateAnalysis") -> "CandidateAnalysis":
        """The (shared) analysis of ``x``; identity on analyses."""
        if isinstance(x, CandidateAnalysis):
            return x
        cached = x.__dict__.get("_candidate_analysis")
        if cached is None:
            cached = cls(x)
            x.__dict__["_candidate_analysis"] = cached
        return cached

    # ------------------------------------------------------------------
    # Generic memoization
    # ------------------------------------------------------------------

    def memo(self, key, compute: Callable[[], V], txn_free: bool = False) -> V:
        """The value of ``compute()``, computed at most once per candidate.

        ``txn_free=True`` declares the value independent of the
        transactional structure: a baseline view stores it on its
        parent, so the ``tm=True`` and ``tm=False`` sweeps of one
        candidate share it.
        """
        target = (
            self._parent
            if txn_free and self._parent is not None
            else self
        )
        memo = target._memo
        try:
            return memo[key]
        except KeyError:
            pass
        if trace.ACTIVE is not None:
            with trace.stage("analysis"):
                value = compute()
        else:
            value = compute()
        memo[key] = value
        return value

    def ir(self, node) -> V:
        """Evaluate a :class:`repro.ir.nodes.Node` against this candidate.

        Convenience entry point into the unified IR engine; the result
        is memoized in :attr:`_ir_memo` (keyed by node id) with the
        node's ``txn_free`` flag routed into the baseline-sharing
        split, so every model sweeping this candidate reads one
        computation per shared node.
        """
        from ..ir.eval import evaluate

        return evaluate(node, self)

    # ------------------------------------------------------------------
    # The tm=False view
    # ------------------------------------------------------------------

    @property
    def baseline(self) -> "CandidateAnalysis":
        """The non-transactional view of this candidate (section 5.3).

        For candidates without transactions this is the analysis itself;
        otherwise a view over the same events that erases ``stxn``,
        ``stxnat``, ``tfence``, and the transactional event sets while
        sharing every transaction-independent value with the parent.
        """
        parent = self._parent
        if parent is not None:
            return self
        if not self.x.txns:
            return self
        if self._baseline is None:
            self._baseline = CandidateAnalysis(self.x, _parent=self)
        return self._baseline

    @property
    def execution(self) -> Execution:
        """The underlying execution (transaction-stripped for baselines)."""
        if self._parent is None:
            return self.x
        return self.memo("baseline_execution", self.x.without_transactions)

    # ------------------------------------------------------------------
    # Transaction structure (empty on the baseline view)
    # ------------------------------------------------------------------

    @property
    def stxn(self) -> Relation:
        if self._parent is not None:
            return Relation.empty(self.x.n)
        return self.x.stxn

    @property
    def stxnat(self) -> Relation:
        if self._parent is not None:
            return Relation.empty(self.x.n)
        return self.x.stxnat

    @property
    def tfence(self) -> Relation:
        if self._parent is not None:
            return Relation.empty(self.x.n)
        return self.x.tfence

    @property
    def txn_events(self) -> frozenset[int]:
        if self._parent is not None:
            return frozenset()
        return self.x.txn_events

    @property
    def atomic_txn_events(self) -> frozenset[int]:
        """Events inside a successful *atomic* transaction (C++)."""
        if self._parent is not None:
            return frozenset()
        return self.memo(
            "atomic_txn_events",
            lambda: frozenset(
                e for txn in self.x.txns if txn.atomic for e in txn.events
            ),
        )

    # ------------------------------------------------------------------
    # Memoized helper constructors
    # ------------------------------------------------------------------

    def lift(self, events: Iterable[int]) -> Relation:
        """Memoized ``[s]`` (identity restricted to ``events``)."""
        key = events if isinstance(events, frozenset) else frozenset(events)
        return self.memo(
            ("lift", key),
            lambda: Relation.lift(self.x.n, key),
            txn_free=True,
        )

    def cross(self, sources: Iterable[int], targets: Iterable[int]) -> Relation:
        """Memoized Cartesian product ``sources × targets``."""
        skey = sources if isinstance(sources, frozenset) else frozenset(sources)
        tkey = targets if isinstance(targets, frozenset) else frozenset(targets)
        return self.memo(
            ("cross", skey, tkey),
            lambda: Relation.cross(self.x.n, skey, tkey),
            txn_free=True,
        )

    def labelled(self, label: str) -> frozenset[int]:
        """Memoized set of events carrying ``label``."""
        return self.memo(
            ("labelled", label),
            lambda: self.x.with_label(label),
            txn_free=True,
        )

    def fence_rel(self, kind: str) -> Relation:
        """Memoized ``po; [F_kind]; po`` (the paper's footnote 1)."""
        return self.memo(
            ("fence_rel", kind),
            lambda: self.x.fence_rel(kind),
            txn_free=True,
        )

    def external(self, rel: Relation) -> Relation:
        """``r^e = r \\ (po ∪ po⁻¹)*``."""
        return rel - self.x.sthd

    def internal(self, rel: Relation) -> Relation:
        """``r^i = r ∩ (po ∪ po⁻¹)*``."""
        return rel & self.x.sthd

    @property
    def ext(self) -> Relation:
        """Different-thread pairs (the .cat primitive ``ext``)."""
        return self.memo(
            "ext",
            lambda: Relation.full(self.x.n) - self.x.sthd,
            txn_free=True,
        )

    # -- transaction lifting (section 3.3), memoized per operand --------

    def stronglift(self, rel: Relation) -> Relation:
        """Memoized ``stronglift(rel, stxn)``."""
        return self.memo(
            ("stronglift", rel), lambda: _stronglift(rel, self.stxn)
        )

    def weaklift(self, rel: Relation) -> Relation:
        """Memoized ``weaklift(rel, stxn)``."""
        return self.memo(("weaklift", rel), lambda: _weaklift(rel, self.stxn))

    # -- axioms shared verbatim by every architecture model --------------

    @property
    def coherence(self) -> Relation:
        """``po_loc ∪ com`` — the Coherence axiom's operand."""
        return self.memo(
            "coherence", lambda: self.x.po_loc | self.x.com, txn_free=True
        )

    @property
    def rmw_isol(self) -> Relation:
        """``rmw ∩ (fre ; coe)`` — the RMWIsol axiom's operand."""
        return self.memo(
            "rmw_isol",
            lambda: self.x.rmw_rel & (self.x.fre @ self.x.coe),
            txn_free=True,
        )

    def __repr__(self) -> str:
        tag = " baseline" if self._parent is not None else ""
        return f"<CandidateAnalysis{tag} of {self.x!r}>"


def _make_delegate(name: str):
    def getter(self: CandidateAnalysis):
        return getattr(self.x, name)

    getter.__name__ = name
    getter.__doc__ = f"Delegates to ``Execution.{name}`` (shared cache)."
    return property(getter)


for _name in _DELEGATED:
    setattr(CandidateAnalysis, _name, _make_delegate(_name))
del _name


def analyze(x: "Execution | CandidateAnalysis") -> CandidateAnalysis:
    """Coerce ``x`` to its shared :class:`CandidateAnalysis`.

    Model code calls this first, so every public model entry point
    accepts either a raw execution (back-compat: tests, the metatheory,
    the synthesizer) or an analysis (the checking pipeline).
    """
    return CandidateAnalysis.of(x)
