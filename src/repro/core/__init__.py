"""Core substrate: relations, events, executions, analyses, well-formedness."""

from .analysis import CandidateAnalysis, analyze
from .builder import ExecutionBuilder, ThreadBuilder
from .events import Event, EventKind, Label, call, fence, read, write
from .execution import Execution, Transaction
from .lifting import stronglift, weaklift
from .relation import Relation
from .wellformed import (
    WellformednessError,
    check,
    check_cpp,
    is_wellformed,
    require,
)

__all__ = [
    "CandidateAnalysis",
    "analyze",
    "Event",
    "EventKind",
    "Execution",
    "ExecutionBuilder",
    "Label",
    "Relation",
    "ThreadBuilder",
    "Transaction",
    "WellformednessError",
    "call",
    "check",
    "check_cpp",
    "fence",
    "is_wellformed",
    "read",
    "require",
    "stronglift",
    "weaklift",
    "write",
]
