"""Finite binary relations over a fixed universe of events.

This module is the relational-algebra substrate of the whole library: every
axiom in the paper (acyclicity of ``hb``, emptiness of ``rmw ∩ tfence``,
etc.) is a predicate over :class:`Relation` values built with the operators
defined here.

A relation over a universe of ``n`` events is stored as ``n`` row bitmasks:
bit ``j`` of ``rows[i]`` is set iff the pair ``(i, j)`` is in the relation.
Executions in this project are small (a dozen events or so), so Python
integers make union/intersection/composition/closure fast enough for the
exhaustive enumeration performed by :mod:`repro.synth`.

The operator names follow the paper's notation (section 2.1):

===========================  ==============================================
Paper                        Here
===========================  ==============================================
``r1 ∪ r2``                  ``r1 | r2``
``r1 ∩ r2``                  ``r1 & r2``
``r1 \\ r2``                 ``r1 - r2``
``¬r``                       ``r.complement()``
``r1 ; r2``                  ``r1 @ r2`` (or :meth:`Relation.then`)
``r⁻¹``                      ``r.inverse()``
``r?``                       ``r.opt()``
``r⁺``                       ``r.plus()``
``r*``                       ``r.star()``
``[s]``                      ``Relation.lift(n, s)``
``domain(r)`` / ``range(r)`` ``r.domain()`` / ``r.codomain()``
===========================  ==============================================
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

Pair = tuple[int, int]

__all__ = ["Relation", "Pair"]


def _bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Relation:
    """An immutable binary relation over the universe ``{0, ..., n-1}``.

    Instances are hashable and support the full relational algebra used by
    axiomatic memory models.  All operations return new relations; nothing
    mutates in place.
    """

    __slots__ = ("n", "_rows", "_hash")

    def __init__(self, n: int, rows: Iterable[int] = ()) -> None:
        rows = tuple(rows) or (0,) * n
        if len(rows) != n:
            raise ValueError(f"expected {n} rows, got {len(rows)}")
        full = (1 << n) - 1
        self.n = n
        self._rows = tuple(row & full for row in rows)
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, n: int) -> "Relation":
        """The empty relation over a universe of size ``n``."""
        return cls(n, (0,) * n)

    @classmethod
    def full(cls, n: int) -> "Relation":
        """The complete relation (every pair, including the diagonal)."""
        row = (1 << n) - 1
        return cls(n, (row,) * n)

    @classmethod
    def identity(cls, n: int) -> "Relation":
        """The identity relation ``id`` over ``{0, ..., n-1}``."""
        return cls(n, (1 << i for i in range(n)))

    @classmethod
    def from_pairs(cls, n: int, pairs: Iterable[Pair]) -> "Relation":
        """Build a relation from an iterable of ``(source, target)`` pairs."""
        rows = [0] * n
        for a, b in pairs:
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"pair ({a}, {b}) outside universe of size {n}")
            rows[a] |= 1 << b
        return cls(n, rows)

    @classmethod
    def lift(cls, n: int, events: Iterable[int]) -> "Relation":
        """The paper's ``[s]``: the identity restricted to ``events``."""
        rows = [0] * n
        for e in events:
            rows[e] |= 1 << e
        return cls(n, rows)

    @classmethod
    def cross(cls, n: int, sources: Iterable[int], targets: Iterable[int]) -> "Relation":
        """The Cartesian product ``sources × targets`` as a relation."""
        target_mask = 0
        for t in targets:
            target_mask |= 1 << t
        rows = [0] * n
        for s in sources:
            rows[s] = target_mask
        return cls(n, rows)

    @classmethod
    def total_order(cls, n: int, chain: Iterable[int]) -> "Relation":
        """The strict total order induced by the sequence ``chain``.

        ``total_order(4, [2, 0, 3])`` relates 2→0, 2→3, and 0→3.
        """
        rows = [0] * n
        seen_mask = 0
        for e in reversed(list(chain)):
            rows[e] |= seen_mask
            seen_mask |= 1 << e
        return cls(n, rows)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def pairs(self) -> Iterator[Pair]:
        """Iterate over all pairs in the relation, row-major."""
        for i, row in enumerate(self._rows):
            for j in _bits(row):
                yield (i, j)

    def row(self, i: int) -> int:
        """The successor bitmask of event ``i``."""
        return self._rows[i]

    def successors(self, i: int) -> Iterator[int]:
        """Iterate over the events ``j`` with ``(i, j)`` in the relation."""
        return _bits(self._rows[i])

    def domain(self) -> frozenset[int]:
        """The set of events with at least one outgoing edge."""
        return frozenset(i for i, row in enumerate(self._rows) if row)

    def codomain(self) -> frozenset[int]:
        """The set of events with at least one incoming edge."""
        mask = 0
        for row in self._rows:
            mask |= row
        return frozenset(_bits(mask))

    def field(self) -> frozenset[int]:
        """Domain union codomain."""
        return self.domain() | self.codomain()

    def __contains__(self, pair: Pair) -> bool:
        a, b = pair
        return 0 <= a < self.n and bool(self._rows[a] >> b & 1)

    def __len__(self) -> int:
        return sum(row.bit_count() for row in self._rows)

    def __bool__(self) -> bool:
        return any(self._rows)

    def is_empty(self) -> bool:
        """True iff the relation contains no pairs."""
        return not any(self._rows)

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "Relation") -> None:
        if self.n != other.n:
            raise ValueError(f"universe mismatch: {self.n} vs {other.n}")

    def __or__(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self.n, (a | b for a, b in zip(self._rows, other._rows)))

    def __and__(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self.n, (a & b for a, b in zip(self._rows, other._rows)))

    def __sub__(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self.n, (a & ~b for a, b in zip(self._rows, other._rows)))

    def complement(self) -> "Relation":
        """``¬r``: every pair (including the diagonal) not in ``r``."""
        full = (1 << self.n) - 1
        return Relation(self.n, (full ^ row for row in self._rows))

    def __le__(self, other: "Relation") -> bool:
        """Subset test: every pair of ``self`` is in ``other``."""
        self._check_compatible(other)
        return all(a & ~b == 0 for a, b in zip(self._rows, other._rows))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.n == other.n and self._rows == other._rows

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.n, self._rows))
        return self._hash

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------

    def __matmul__(self, other: "Relation") -> "Relation":
        """Relational composition ``self ; other``."""
        self._check_compatible(other)
        rows = []
        for row in self._rows:
            out = 0
            for j in _bits(row):
                out |= other._rows[j]
            rows.append(out)
        return Relation(self.n, rows)

    def then(self, *others: "Relation") -> "Relation":
        """Compose with each relation in ``others`` left-to-right."""
        result = self
        for other in others:
            result = result @ other
        return result

    def inverse(self) -> "Relation":
        """``r⁻¹``: the converse relation."""
        rows = [0] * self.n
        for i, row in enumerate(self._rows):
            bit = 1 << i
            for j in _bits(row):
                rows[j] |= bit
        return Relation(self.n, rows)

    def opt(self) -> "Relation":
        """``r?``: reflexive closure."""
        return Relation(self.n, (row | (1 << i) for i, row in enumerate(self._rows)))

    def plus(self) -> "Relation":
        """``r⁺``: transitive closure (Warshall on bitmask rows).

        One pass is complete: after the ``k``-th outer iteration,
        ``rows[i]`` holds every ``j`` reachable from ``i`` through
        intermediate vertices in ``{0..k}`` (the standard
        Floyd–Warshall invariant, with the inner ``j`` loop collapsed
        into one bitmask union).  ``tests/test_relation_properties.py``
        checks the result against an independent repeated-squaring
        closure.
        """
        rows = list(self._rows)
        for k in range(self.n):
            k_bit = 1 << k
            k_row = rows[k]
            for i in range(self.n):
                if rows[i] & k_bit:
                    rows[i] |= k_row
        return Relation(self.n, rows)

    def star(self) -> "Relation":
        """``r*``: reflexive-transitive closure."""
        return self.plus().opt()

    def restrict(self, sources: Iterable[int], targets: Iterable[int]) -> "Relation":
        """Keep only pairs with source in ``sources`` and target in ``targets``."""
        target_mask = 0
        for t in targets:
            target_mask |= 1 << t
        source_set = set(sources)
        rows = [
            (row & target_mask) if i in source_set else 0
            for i, row in enumerate(self._rows)
        ]
        return Relation(self.n, rows)

    def remove_diagonal(self) -> "Relation":
        """Drop all reflexive pairs."""
        return Relation(self.n, (row & ~(1 << i) for i, row in enumerate(self._rows)))

    def symmetric_closure(self) -> "Relation":
        """``r ∪ r⁻¹``."""
        return self | self.inverse()

    def without_events(self, events: Iterable[int]) -> "Relation":
        """Drop every pair incident to any event in ``events``."""
        mask = 0
        for e in events:
            mask |= 1 << e
        rows = [0 if (1 << i) & mask else row & ~mask for i, row in enumerate(self._rows)]
        return Relation(self.n, rows)

    # ------------------------------------------------------------------
    # Predicates and witnesses
    # ------------------------------------------------------------------

    def is_irreflexive(self) -> bool:
        """True iff no event is related to itself."""
        return all(not (row >> i & 1) for i, row in enumerate(self._rows))

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a digraph, has no cycle."""
        # Iteratively strip events with no outgoing edges into remaining set.
        alive = (1 << self.n) - 1
        changed = True
        while changed and alive:
            changed = False
            for i in range(self.n):
                bit = 1 << i
                if alive & bit and not (self._rows[i] & alive):
                    alive ^= bit
                    changed = True
        return not alive

    def find_cycle(self) -> list[int] | None:
        """Return one cycle as a list of events, or ``None`` if acyclic.

        The returned list ``[e0, e1, ..., ek]`` satisfies ``(ei, ei+1)`` in
        the relation for all ``i``, and ``(ek, e0)`` as well.
        """
        color = [0] * self.n  # 0 = white, 1 = on stack, 2 = done
        stack: list[int] = []

        def dfs(v: int) -> list[int] | None:
            color[v] = 1
            stack.append(v)
            for w in _bits(self._rows[v]):
                if color[w] == 1:
                    return stack[stack.index(w):]
                if color[w] == 0:
                    found = dfs(w)
                    if found is not None:
                        return found
            stack.pop()
            color[v] = 2
            return None

        for v in range(self.n):
            if color[v] == 0:
                cycle = dfs(v)
                if cycle is not None:
                    return cycle
        return None

    def is_transitive(self) -> bool:
        """True iff ``r ; r ⊆ r``."""
        return (self @ self) <= self

    def is_symmetric(self) -> bool:
        """True iff ``r = r⁻¹``."""
        return self == self.inverse()

    def is_total_order_on(self, events: Iterable[int]) -> bool:
        """True iff the relation is a strict total order over ``events``."""
        events = list(events)
        if not self.is_irreflexive() or not self.is_transitive():
            return False
        for idx, a in enumerate(events):
            for b in events[idx + 1:]:
                forward = (a, b) in self
                backward = (b, a) in self
                if forward == backward:
                    return False
        return True

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def map_events(self, n: int, mapping: dict[int, int]) -> "Relation":
        """Rename events through ``mapping`` into a universe of size ``n``.

        Pairs whose endpoints are not both in ``mapping`` are dropped.
        """
        pairs = [
            (mapping[a], mapping[b])
            for a, b in self.pairs()
            if a in mapping and b in mapping
        ]
        return Relation.from_pairs(n, pairs)

    def __repr__(self) -> str:
        shown = ", ".join(f"{a}->{b}" for a, b in self.pairs())
        return f"Relation({self.n}, {{{shown}}})"
