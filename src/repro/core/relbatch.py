"""Batched relational algebra: one kernel call over a stack of candidates.

A campaign evaluates the same IR node over hundreds of candidate
executions that share a universe size; doing that one
:class:`~repro.core.relation.Relation` at a time pays the Python
interpreter per node *per candidate*.  :class:`RelationBatch` stores a
whole stack as one dense 0/1 ``uint8`` tensor of shape ``[batch, n,
n]`` (``data[b, i, j]`` is 1 iff pair ``(i, j)`` is in candidate
``b``'s relation) and implements the full algebra as vectorized numpy
kernels, so the per-node interpreter cost is paid once per *batch*.
The dense layout trades memory (one byte per pair; universes here are
tens of events) for kernels that are single C-level calls —
composition is one integer ``matmul``, inverse is an axis swap, the
boolean algebra is elementwise ``uint8`` bitwise ops.

When numpy is absent (or disabled via ``REPRO_NO_NUMPY=1`` /
:func:`set_backend`), a pure-Python fallback provides the identical API
by mapping each operation over a tuple of packed-int
:class:`Relation` values — same semantics, scalar speed.  Everything
downstream (the batch evaluator, the compiled plans, the chunked
candidate streams) is backend-agnostic.

Transitive closure uses repeated squaring (``R ← R ∪ R;R`` until fixed,
at most ``ceil(log2 n)`` + 1 rounds), the same kernel the batch
evaluator uses for ``plus``/``star``; the scalar
:meth:`Relation.plus` keeps its single-pass Warshall loop (the property
tests prove the two agree).

Predicates (:meth:`RelationBatch.is_empty` /
:meth:`~RelationBatch.is_irreflexive` / :meth:`~RelationBatch.is_acyclic`)
return one ``bool`` per candidate, which is what the batched axiom
checks consume.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence

from .relation import Relation

__all__ = [
    "HAVE_NUMPY",
    "RelationBatch",
    "SetBatch",
    "active_backend",
    "set_backend",
]

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if os.environ.get("REPRO_NO_NUMPY"):
    _np = None

#: True when the vectorized numpy backend is importable and not disabled.
HAVE_NUMPY = _np is not None

#: Explicit override ("numpy" | "python") or None for automatic choice.
_FORCED: str | None = None


def set_backend(name: str | None) -> None:
    """Force the backend: ``"numpy"``, ``"python"``, or ``None``/"auto".

    Used by the differential tests to exercise the pure-Python fallback
    on machines that do have numpy.
    """
    global _FORCED
    if name in (None, "auto"):
        _FORCED = None
        return
    if name not in ("numpy", "python"):
        raise ValueError(f"unknown relbatch backend {name!r}")
    if name == "numpy" and not HAVE_NUMPY:
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    _FORCED = name


def active_backend() -> str:
    """The backend new batches are built with."""
    if _FORCED is not None:
        return _FORCED
    return "numpy" if HAVE_NUMPY else "python"


# ----------------------------------------------------------------------
# Set stacks
# ----------------------------------------------------------------------


class SetBatch:
    """A stack of event sets over a shared universe of size ``n``."""

    __slots__ = ()

    @staticmethod
    def from_sets(sets: Sequence[Iterable[int]], n: int) -> "SetBatch":
        if active_backend() == "numpy":
            data = _np.zeros((len(sets), n), dtype=_np.uint8)
            for b, events in enumerate(sets):
                for e in events:
                    data[b, e] = 1
            return _NumpySetBatch(data, n)
        masks = []
        for events in sets:
            mask = 0
            for e in events:
                mask |= 1 << e
            masks.append(mask)
        return _PySetBatch(tuple(masks), n)

    @staticmethod
    def from_dense(data) -> "SetBatch":
        """Wrap a 0/1 ``uint8`` ``[batch, n]`` array (numpy backend only).

        The caller promises never to mutate ``data`` afterwards — batch
        values are immutable by convention, and every kernel allocates
        its result.
        """
        if active_backend() != "numpy":
            raise RuntimeError("from_dense requires the numpy backend")
        return _NumpySetBatch(data, data.shape[1])

    @staticmethod
    def full(batch: int, n: int) -> "SetBatch":
        return SetBatch.from_sets([range(n)] * batch, n)

    @staticmethod
    def empty(batch: int, n: int) -> "SetBatch":
        return SetBatch.from_sets([()] * batch, n)

    def to_sets(self) -> list[frozenset[int]]:
        raise NotImplementedError

    def __len__(self) -> int:
        return self.batch  # type: ignore[attr-defined]


class _NumpySetBatch(SetBatch):
    __slots__ = ("data", "n", "batch")

    def __init__(self, data, n: int) -> None:
        self.data = data  # uint8 0/1 [batch, n]
        self.n = n
        self.batch = data.shape[0]

    def __or__(self, other):
        return _NumpySetBatch(self.data | other.data, self.n)

    def __and__(self, other):
        return _NumpySetBatch(self.data & other.data, self.n)

    def __sub__(self, other):
        return _NumpySetBatch(self.data & (other.data ^ 1), self.n)

    def complement(self):
        return _NumpySetBatch(self.data ^ 1, self.n)

    def is_empty(self):
        return ~self.data.any(axis=1)

    def same_as(self, other) -> bool:
        return _np.array_equal(self.data, other.data)

    def to_sets(self) -> list[frozenset[int]]:
        return [
            frozenset(int(i) for i in row.nonzero()[0]) for row in self.data
        ]


class _PySetBatch(SetBatch):
    __slots__ = ("masks", "n", "batch")

    def __init__(self, masks: tuple[int, ...], n: int) -> None:
        self.masks = masks
        self.n = n
        self.batch = len(masks)

    def _zip(self, other, op):
        return _PySetBatch(
            tuple(op(a, b) for a, b in zip(self.masks, other.masks)), self.n
        )

    def __or__(self, other):
        return self._zip(other, lambda a, b: a | b)

    def __and__(self, other):
        return self._zip(other, lambda a, b: a & b)

    def __sub__(self, other):
        return self._zip(other, lambda a, b: a & ~b)

    def complement(self):
        full = (1 << self.n) - 1
        return _PySetBatch(tuple(full & ~m for m in self.masks), self.n)

    def is_empty(self):
        return [m == 0 for m in self.masks]

    def same_as(self, other) -> bool:
        return self.masks == other.masks

    def to_sets(self) -> list[frozenset[int]]:
        return [
            frozenset(i for i in range(self.n) if mask >> i & 1)
            for mask in self.masks
        ]


# ----------------------------------------------------------------------
# Relation stacks
# ----------------------------------------------------------------------


class RelationBatch:
    """A stack of binary relations over a shared universe of size ``n``."""

    __slots__ = ()

    @staticmethod
    def from_relations(relations: Sequence[Relation]) -> "RelationBatch":
        n = relations[0].n
        for r in relations:
            if r.n != n:
                raise ValueError("mixed universe sizes in one batch")
        if active_backend() == "numpy":
            if n <= 64:
                # One vectorized unpack: the packed rows fit uint64.
                masks = _np.array(
                    [rel._rows for rel in relations], dtype=_np.uint64
                ).reshape(len(relations), n)
                shifts = _np.arange(n, dtype=_np.uint64)
                data = (
                    (masks[:, :, None] >> shifts[None, None, :])
                    & _np.uint64(1)
                ).astype(_np.uint8)
            else:
                data = _np.zeros((len(relations), n, n), dtype=_np.uint8)
                for b, rel in enumerate(relations):
                    for i, row in enumerate(rel._rows):
                        while row:
                            low = row & -row
                            data[b, i, low.bit_length() - 1] = 1
                            row ^= low
            return _NumpyRelationBatch(data, n)
        return _PyRelationBatch(tuple(relations), n)

    @staticmethod
    def from_dense(data) -> "RelationBatch":
        """Wrap a 0/1 ``uint8`` ``[batch, n, n]`` array (numpy backend
        only); the caller promises never to mutate ``data`` afterwards."""
        if active_backend() != "numpy":
            raise RuntimeError("from_dense requires the numpy backend")
        return _NumpyRelationBatch(data, data.shape[1])

    @staticmethod
    def empty(batch: int, n: int) -> "RelationBatch":
        if active_backend() == "numpy":
            return _NumpyRelationBatch(
                _np.zeros((batch, n, n), dtype=_np.uint8), n
            )
        return RelationBatch.from_relations([Relation.empty(n)] * batch)

    @staticmethod
    def identity(batch: int, n: int) -> "RelationBatch":
        if active_backend() == "numpy":
            return _NumpyRelationBatch(
                _np.broadcast_to(_eye(n), (batch, n, n)), n
            )
        return RelationBatch.from_relations([Relation.identity(n)] * batch)

    @staticmethod
    def full(batch: int, n: int) -> "RelationBatch":
        if active_backend() == "numpy":
            return _NumpyRelationBatch(
                _np.ones((batch, n, n), dtype=_np.uint8), n
            )
        return RelationBatch.from_relations([Relation.full(n)] * batch)

    @staticmethod
    def lift_set(events: SetBatch) -> "RelationBatch":
        """The paper's ``[s]`` per candidate (identity on ``events``)."""
        if isinstance(events, _NumpySetBatch):
            return _NumpyRelationBatch.lift_set(events)
        return _PyRelationBatch.lift_set(events)

    @staticmethod
    def cross_sets(sources: SetBatch, targets: SetBatch) -> "RelationBatch":
        """The Cartesian product ``sources × targets`` per candidate."""
        if isinstance(sources, _NumpySetBatch):
            return _NumpyRelationBatch.cross_sets(sources, targets)
        return _PyRelationBatch.cross_sets(sources, targets)

    def to_relations(self) -> list[Relation]:
        raise NotImplementedError

    def star(self):
        return self.plus().opt()  # type: ignore[attr-defined]

    def __len__(self) -> int:
        return self.batch  # type: ignore[attr-defined]


_EYES: dict[int, object] = {}


def _eye(n: int):
    """uint8 ``[n, n]`` identity, shared across batches."""
    cached = _EYES.get(n)
    if cached is None:
        cached = _np.eye(n, dtype=_np.uint8)
        _EYES[n] = cached
    return cached


class _NumpyRelationBatch(RelationBatch):
    __slots__ = ("data", "n", "batch")

    def __init__(self, data, n: int) -> None:
        self.data = data  # uint8 0/1 [batch, n, n]
        self.n = n
        self.batch = data.shape[0]

    # -- boolean algebra ------------------------------------------------

    def __or__(self, other):
        return _NumpyRelationBatch(self.data | other.data, self.n)

    def __and__(self, other):
        return _NumpyRelationBatch(self.data & other.data, self.n)

    def __sub__(self, other):
        return _NumpyRelationBatch(self.data & (other.data ^ 1), self.n)

    def complement(self):
        return _NumpyRelationBatch(self.data ^ 1, self.n)

    # -- composition and friends ----------------------------------------

    def __matmul__(self, other):
        """Relational composition as one batched matmul per stack.

        The operands are widened to ``float32``: numpy routes float
        matmul through BLAS, which beats the generic integer gufunc by
        5-30x at these shapes even counting the conversions, and the
        accumulation is exact (row sums are at most ``n``, far below
        the 2**24 float32 integer range).
        """
        a = self.data.astype(_np.float32)
        b = other.data.astype(_np.float32)
        return _NumpyRelationBatch(
            (_np.matmul(a, b) != 0).view(_np.uint8), self.n
        )

    def inverse(self):
        return _NumpyRelationBatch(self.data.swapaxes(1, 2), self.n)

    def opt(self):
        return _NumpyRelationBatch(self.data | _eye(self.n), self.n)

    def plus(self):
        """Transitive closure by repeated squaring."""
        cur = self
        while True:
            nxt = cur | (cur @ cur)
            if nxt.same_as(cur):
                return cur
            cur = nxt

    def remove_diagonal(self):
        return _NumpyRelationBatch(self.data & (_eye(self.n) ^ 1), self.n)

    def restrict(self, sources: SetBatch, targets: SetBatch):
        """Keep pairs with source in ``sources`` and target in ``targets``."""
        data = self.data & sources.data[:, :, None] & targets.data[:, None, :]
        return _NumpyRelationBatch(data, self.n)

    def restrict_domain(self, sources: SetBatch):
        """``[sources] ; r`` — keep pairs whose source is in ``sources``."""
        return _NumpyRelationBatch(
            self.data & sources.data[:, :, None], self.n
        )

    def restrict_range(self, targets: SetBatch):
        """``r ; [targets]`` — keep pairs whose target is in ``targets``."""
        return _NumpyRelationBatch(
            self.data & targets.data[:, None, :], self.n
        )

    @staticmethod
    def lift_set(events: SetBatch):
        return _NumpyRelationBatch(
            _eye(events.n) & events.data[:, :, None], events.n
        )

    @staticmethod
    def cross_sets(sources: SetBatch, targets: SetBatch):
        return _NumpyRelationBatch(
            sources.data[:, :, None] & targets.data[:, None, :], sources.n
        )

    def domain(self) -> SetBatch:
        return _NumpySetBatch(
            self.data.any(axis=2).view(_np.uint8), self.n
        )

    def codomain(self) -> SetBatch:
        return _NumpySetBatch(
            self.data.any(axis=1).view(_np.uint8), self.n
        )

    # -- predicates (one bool per candidate) ----------------------------

    def is_empty(self):
        return ~self.data.any(axis=(1, 2))

    def is_irreflexive(self):
        idx = _np.arange(self.n)
        return ~self.data[:, idx, idx].any(axis=1)

    def is_acyclic(self):
        return self.plus().is_irreflexive()

    def same_as(self, other) -> bool:
        return _np.array_equal(self.data, other.data)

    def to_relations(self) -> list[Relation]:
        shifts = _np.arange(self.n, dtype=object)
        masks = _np.bitwise_or.reduce(
            self.data.astype(object) << shifts[None, None, :], axis=2
        )
        return [Relation(self.n, map(int, masks[b])) for b in range(self.batch)]


class _PyRelationBatch(RelationBatch):
    """Fallback: the same API over a tuple of scalar :class:`Relation`.

    Python ints *are* packed bitmask rows, so this is the "pure-Python
    packed" path — correct everywhere, vectorized nowhere.
    """

    __slots__ = ("rels", "n", "batch")

    def __init__(self, rels: tuple[Relation, ...], n: int) -> None:
        self.rels = rels
        self.n = n
        self.batch = len(rels)

    def _map(self, op):
        return _PyRelationBatch(tuple(op(r) for r in self.rels), self.n)

    def _zip(self, other, op):
        return _PyRelationBatch(
            tuple(op(a, b) for a, b in zip(self.rels, other.rels)), self.n
        )

    def __or__(self, other):
        return self._zip(other, lambda a, b: a | b)

    def __and__(self, other):
        return self._zip(other, lambda a, b: a & b)

    def __sub__(self, other):
        return self._zip(other, lambda a, b: a - b)

    def complement(self):
        return self._map(Relation.complement)

    def __matmul__(self, other):
        return self._zip(other, lambda a, b: a @ b)

    def inverse(self):
        return self._map(Relation.inverse)

    def opt(self):
        return self._map(Relation.opt)

    def plus(self):
        return self._map(Relation.plus)

    def remove_diagonal(self):
        return self._map(Relation.remove_diagonal)

    def restrict(self, sources: "_PySetBatch", targets: "_PySetBatch"):
        out = []
        for rel, smask, tmask in zip(
            self.rels, sources.masks, targets.masks
        ):
            rows = (
                (row & tmask) if smask >> i & 1 else 0
                for i, row in enumerate(rel._rows)
            )
            out.append(Relation(rel.n, rows))
        return _PyRelationBatch(tuple(out), self.n)

    def restrict_domain(self, sources: "_PySetBatch"):
        out = []
        for rel, smask in zip(self.rels, sources.masks):
            rows = (
                row if smask >> i & 1 else 0
                for i, row in enumerate(rel._rows)
            )
            out.append(Relation(rel.n, rows))
        return _PyRelationBatch(tuple(out), self.n)

    def restrict_range(self, targets: "_PySetBatch"):
        out = []
        for rel, tmask in zip(self.rels, targets.masks):
            out.append(Relation(rel.n, (row & tmask for row in rel._rows)))
        return _PyRelationBatch(tuple(out), self.n)

    @staticmethod
    def lift_set(events: "_PySetBatch"):
        n = events.n
        rels = tuple(
            Relation(
                n, ((mask >> i & 1) << i for i in range(n))
            )
            for mask in events.masks
        )
        return _PyRelationBatch(rels, n)

    @staticmethod
    def cross_sets(sources: "_PySetBatch", targets: "_PySetBatch"):
        n = sources.n
        rels = tuple(
            Relation(
                n,
                (tmask if smask >> i & 1 else 0 for i in range(n)),
            )
            for smask, tmask in zip(sources.masks, targets.masks)
        )
        return _PyRelationBatch(rels, n)

    def domain(self) -> "_PySetBatch":
        masks = []
        for rel in self.rels:
            mask = 0
            for i, row in enumerate(rel._rows):
                if row:
                    mask |= 1 << i
            masks.append(mask)
        return _PySetBatch(tuple(masks), self.n)

    def codomain(self) -> "_PySetBatch":
        masks = []
        for rel in self.rels:
            mask = 0
            for row in rel._rows:
                mask |= row
            masks.append(mask)
        return _PySetBatch(tuple(masks), self.n)

    def is_empty(self):
        return [r.is_empty() for r in self.rels]

    def is_irreflexive(self):
        return [r.is_irreflexive() for r in self.rels]

    def is_acyclic(self):
        return [r.is_acyclic() for r in self.rels]

    def same_as(self, other) -> bool:
        return self.rels == other.rels

    def to_relations(self) -> list[Relation]:
        return list(self.rels)
