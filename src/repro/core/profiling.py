"""Compatibility shim over :mod:`repro.obs` (the telemetry subsystem).

This module used to own the four-stage profiler behind
``repro campaign --profile``.  The real implementation now lives in
:mod:`repro.obs.trace` — a structured span tracer with the same
self-time attribution (per-stage totals sum to the instrumented wall
clock, no double counting), plus span ring buffers, JSONL sidecars,
and cross-process snapshot merging the old profiler never had.

The legacy surface is preserved exactly:

* ``Profiler`` is the tracer class (``seconds``/``calls``/``counters``/
  ``report()`` unchanged);
* ``enable()``/``disable()`` install/uninstall the *full* telemetry
  bundle (tracer + metrics registry) via :mod:`repro.obs.telemetry`,
  returning the tracer so ``--profile`` call sites keep working;
* ``stage(name)`` / ``count(name)`` delegate to the tracer module;
* ``profiling.ACTIVE`` forwards to :data:`repro.obs.trace.ACTIVE`
  through module ``__getattr__``.

New instrumentation should import :mod:`repro.obs.trace` directly —
its module-global ``ACTIVE`` is the cheap one-attribute-read guard
(this shim's ``ACTIVE`` costs a ``__getattr__`` call)::

    from repro.obs import trace

    if trace.ACTIVE is not None:
        with trace.stage("expansion"):
            ...work...
"""

from __future__ import annotations

from ..obs import trace as _trace

__all__ = ["Profiler", "ACTIVE", "stage", "count", "enable", "disable"]

#: The legacy profiler class is the span tracer.
Profiler = _trace.Tracer

#: Re-exported no-op-when-off helpers.
stage = _trace.stage
count = _trace.count


def enable() -> "_trace.Tracer":
    """Install a fresh telemetry bundle; return its tracer."""
    from ..obs import telemetry

    return telemetry.enable().tracer


def disable() -> None:
    """Uninstall the telemetry bundle installed by :func:`enable`."""
    from ..obs import telemetry

    telemetry.disable()


def __getattr__(name: str):
    # ``profiling.ACTIVE`` must track the live tracer; a module global
    # here would go stale the moment obs.enable()/disable() ran.
    if name == "ACTIVE":
        return _trace.ACTIVE
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
