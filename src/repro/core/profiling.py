"""Per-stage timing for the checking pipeline (``repro campaign --profile``).

The pipeline has four stages worth telling apart when hunting for the
next bottleneck:

* ``expansion`` — enumerating candidate executions of a program;
* ``analysis`` — building the shared base relations of a candidate
  (:class:`repro.core.analysis.CandidateAnalysis`);
* ``axioms`` — deriving each model's relations and evaluating its
  axioms (or evaluating a ``.cat`` file);
* ``cache`` — fingerprinting payloads and persistent-cache lookups.

Stages nest (axiom evaluation forces analysis lazily, expansion happens
inside the first axiom sweep of a test), so the profiler keeps a stack
and attributes *self time*: seconds spent in a stage excluding enclosed
stages.  The per-stage totals therefore add up to the instrumented
wall-clock instead of double counting.

Profiling is off by default and costs one module-attribute read per
instrumented site when off.  Hot paths guard with::

    if profiling.ACTIVE is not None:
        with profiling.stage("expansion"):
            ...work...
    else:
        ...work...
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Profiler", "ACTIVE", "stage", "count", "enable", "disable"]


class Profiler:
    """Accumulates self-time seconds and call counts per stage."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self.counters: dict[str, int] = {}
        self._stack: list[list] = []  # [name, start, inner_seconds]

    # -- recording -------------------------------------------------------

    def push(self, name: str) -> None:
        self._stack.append([name, time.perf_counter(), 0.0])

    def pop(self) -> None:
        name, start, inner = self._stack.pop()
        total = time.perf_counter() - start
        self.seconds[name] = self.seconds.get(name, 0.0) + (total - inner)
        self.calls[name] = self.calls.get(name, 0) + 1
        if self._stack:
            self._stack[-1][2] += total

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # -- reporting -------------------------------------------------------

    def report(self) -> str:
        """A per-stage breakdown table (self time, calls, share)."""
        total = sum(self.seconds.values())
        lines = ["stage        seconds     calls   share", "-" * 39]
        order = ("expansion", "analysis", "axioms", "cache")
        names = [n for n in order if n in self.seconds] + sorted(
            set(self.seconds) - set(order)
        )
        for name in names:
            secs = self.seconds[name]
            share = 100 * secs / total if total else 0.0
            lines.append(
                f"{name:<10} {secs:>9.4f} {self.calls[name]:>9} {share:>6.1f}%"
            )
        lines.append(f"{'total':<10} {total:>9.4f}")
        for name in sorted(self.counters):
            lines.append(f"{name}: {self.counters[name]}")
        return "\n".join(lines)


#: The active profiler, or ``None`` when profiling is off.
ACTIVE: Profiler | None = None


def enable() -> Profiler:
    """Install and return a fresh profiler."""
    global ACTIVE
    ACTIVE = Profiler()
    return ACTIVE


def disable() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a pipeline stage (no-op when profiling is off)."""
    prof = ACTIVE
    if prof is None:
        yield
        return
    prof.push(name)
    try:
        yield
    finally:
        prof.pop()


def count(name: str, n: int = 1) -> None:
    """Bump a named counter (no-op when profiling is off)."""
    prof = ACTIVE
    if prof is not None:
        prof.count(name, n)
