"""Executions: graphs of events related by po, rf, co, dependencies, rmw,
and transactions (paper sections 2.1 and 3.1).

An :class:`Execution` stores the *primitive* structure — the per-thread
event sequences (from which ``po`` is derived), the reads-from map, the
per-location coherence orders, dependency edges, ``rmw`` pairs, and
successful transactions — and exposes every *derived* relation used by the
models (``fr``, ``com``, ``sloc``, external/internal restrictions,
architecture fence relations, ``stxn``, ``tfence``, …) as cached
properties.

Executions are immutable; the surgery methods (``without_event`` etc.)
used by the minimisation order of section 4.2 return new executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping, Sequence

from .events import Event, EventKind, Label
from .relation import Relation, _bits as _mask_bits

__all__ = ["Transaction", "Execution"]


@dataclass(frozen=True)
class Transaction:
    """A *successful* transaction: a contiguous run of events in one thread.

    ``events`` are event ids in program order.  ``atomic`` distinguishes
    C++ ``atomic{}`` transactions (members of ``stxnat``) from relaxed
    ``synchronized{}`` transactions; hardware transactions ignore the flag.
    """

    events: tuple[int, ...]
    atomic: bool = False

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("a transaction must contain at least one event")


class Execution:
    """An execution graph.

    Args:
        events: the event vertices; event ids are positions in this tuple.
        threads: per-thread event-id sequences in program order.  Together
            they must partition ``range(len(events))``.
        rf: reads-from map, ``read id -> write id``.  Reads absent from the
            map observe the (implicit) initial value.
        co: per-location coherence orders, ``loc -> write ids`` in the
            order writes hit memory.
        addr, data, ctrl: dependency edges (always from a read to a
            po-later event).
        rmw: read half to write half of read-modify-write operations.
        txns: the successful transactions (section 3.1); failed
            transactions vanish and therefore have no representation.
    """

    def __init__(
        self,
        events: Sequence[Event],
        threads: Sequence[Sequence[int]],
        rf: Mapping[int, int] | Iterable[tuple[int, int]] = (),
        co: Mapping[str, Sequence[int]] | None = None,
        addr: Iterable[tuple[int, int]] = (),
        data: Iterable[tuple[int, int]] = (),
        ctrl: Iterable[tuple[int, int]] = (),
        rmw: Iterable[tuple[int, int]] = (),
        txns: Sequence[Transaction] = (),
    ) -> None:
        self.events: tuple[Event, ...] = tuple(events)
        self.threads: tuple[tuple[int, ...], ...] = tuple(
            tuple(thread) for thread in threads
        )
        self.rf: dict[int, int] = dict(rf.items() if isinstance(rf, Mapping) else rf)
        self.co: dict[str, tuple[int, ...]] = {
            loc: tuple(ws) for loc, ws in (co or {}).items() if ws
        }
        self.addr = frozenset(addr)
        self.data = frozenset(data)
        self.ctrl = frozenset(ctrl)
        self.rmw = frozenset(rmw)
        self.txns: tuple[Transaction, ...] = tuple(txns)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of events."""
        return len(self.events)

    def event(self, eid: int) -> Event:
        return self.events[eid]

    @cached_property
    def tid_of(self) -> dict[int, int]:
        """Map each event id to the index of its thread."""
        out: dict[int, int] = {}
        for tid, thread in enumerate(self.threads):
            for eid in thread:
                out[eid] = tid
        return out

    @cached_property
    def reads(self) -> frozenset[int]:
        """``R``: the read events."""
        return frozenset(i for i, e in enumerate(self.events) if e.is_read)

    @cached_property
    def writes(self) -> frozenset[int]:
        """``W``: the write events."""
        return frozenset(i for i, e in enumerate(self.events) if e.is_write)

    @cached_property
    def fences(self) -> frozenset[int]:
        """``F``: the fence events."""
        return frozenset(i for i, e in enumerate(self.events) if e.is_fence)

    @cached_property
    def calls(self) -> frozenset[int]:
        """Lock-elision call events (section 8.3)."""
        return frozenset(i for i, e in enumerate(self.events) if e.is_call)

    @cached_property
    def accesses(self) -> frozenset[int]:
        """Reads and writes."""
        return self.reads | self.writes

    def with_label(self, label: str) -> frozenset[int]:
        """All events carrying ``label``."""
        return frozenset(i for i, e in enumerate(self.events) if e.has(label))

    @cached_property
    def locations(self) -> tuple[str, ...]:
        """All locations accessed, in first-use order."""
        seen: dict[str, None] = {}
        for thread in self.threads:
            for eid in thread:
                loc = self.events[eid].loc
                if loc is not None and loc not in seen:
                    seen[loc] = None
        return tuple(seen)

    def writes_to(self, loc: str) -> tuple[int, ...]:
        """The coherence order for ``loc`` (empty if no writes)."""
        return self.co.get(loc, ())

    @cached_property
    def txn_of(self) -> dict[int, int]:
        """Map each transactional event id to its transaction's index."""
        out: dict[int, int] = {}
        for idx, txn in enumerate(self.txns):
            for eid in txn.events:
                out[eid] = idx
        return out

    # ------------------------------------------------------------------
    # Primitive relations
    # ------------------------------------------------------------------

    @cached_property
    def po(self) -> Relation:
        """Program order: strict total order per thread."""
        rows = [0] * self.n
        for thread in self.threads:
            later = 0
            for e in reversed(thread):
                rows[e] = later
                later |= 1 << e
        return Relation(self.n, rows)

    @cached_property
    def rf_rel(self) -> Relation:
        """Reads-from as a relation (write → read)."""
        return Relation.from_pairs(self.n, ((w, r) for r, w in self.rf.items()))

    @cached_property
    def co_rel(self) -> Relation:
        """Coherence order as a relation."""
        rows = [0] * self.n
        for order in self.co.values():
            later = 0
            for e in reversed(order):
                rows[e] |= later
                later |= 1 << e
        return Relation(self.n, rows)

    @cached_property
    def addr_rel(self) -> Relation:
        return Relation.from_pairs(self.n, self.addr)

    @cached_property
    def data_rel(self) -> Relation:
        return Relation.from_pairs(self.n, self.data)

    @cached_property
    def ctrl_rel(self) -> Relation:
        return Relation.from_pairs(self.n, self.ctrl)

    @cached_property
    def rmw_rel(self) -> Relation:
        return Relation.from_pairs(self.n, self.rmw)

    # ------------------------------------------------------------------
    # Derived relations (section 2.1)
    # ------------------------------------------------------------------

    @cached_property
    def sloc(self) -> Relation:
        """Same-location relation over accesses (reflexive on accesses)."""
        by_loc: dict[str, int] = {}
        for i in self.accesses:
            loc = self.events[i].loc
            by_loc[loc] = by_loc.get(loc, 0) | (1 << i)
        rows = [0] * self.n
        for mask in by_loc.values():
            for i in _mask_bits(mask):
                rows[i] = mask
        return Relation(self.n, rows)

    @cached_property
    def sthd(self) -> Relation:
        """Same-thread relation, ``(po ∪ po⁻¹)*`` (reflexive)."""
        rows = [0] * self.n
        for thread in self.threads:
            mask = 0
            for e in thread:
                mask |= 1 << e
            for e in thread:
                rows[e] = mask
        return Relation(self.n, rows)

    @cached_property
    def fr(self) -> Relation:
        """From-read: ``([R]; sloc; [W]) \\ (rf⁻¹; (co⁻¹)*)``.

        Reads of the initial value (absent from ``rf``) are fr-before every
        write to the same location, which the formula gives for free since
        their ``rf⁻¹`` image is empty.
        """
        r_sloc_w = Relation.lift(self.n, self.reads).then(
            self.sloc, Relation.lift(self.n, self.writes)
        )
        not_later = self.rf_rel.inverse() @ self.co_rel.inverse().star()
        return r_sloc_w - not_later

    @cached_property
    def com(self) -> Relation:
        """Communication: ``rf ∪ co ∪ fr``."""
        return self.rf_rel | self.co_rel | self.fr

    # External / internal restrictions (``r^e`` and ``r^i`` in the paper).

    def external(self, rel: Relation) -> Relation:
        """``r^e = r \\ (po ∪ po⁻¹)*``: keep only inter-thread pairs."""
        return rel - self.sthd

    def internal(self, rel: Relation) -> Relation:
        """``r^i = r ∩ (po ∪ po⁻¹)*``: keep only intra-thread pairs."""
        return rel & self.sthd

    @cached_property
    def rfe(self) -> Relation:
        return self.external(self.rf_rel)

    @cached_property
    def rfi(self) -> Relation:
        return self.internal(self.rf_rel)

    @cached_property
    def coe(self) -> Relation:
        return self.external(self.co_rel)

    @cached_property
    def coi(self) -> Relation:
        return self.internal(self.co_rel)

    @cached_property
    def fre(self) -> Relation:
        return self.external(self.fr)

    @cached_property
    def fri(self) -> Relation:
        return self.internal(self.fr)

    @cached_property
    def come(self) -> Relation:
        return self.external(self.com)

    @cached_property
    def po_loc(self) -> Relation:
        """``po ∩ sloc``."""
        return self.po & self.sloc

    def fence_rel(self, kind: str) -> Relation:
        """Pairs of events separated in po by a fence event of ``kind``.

        This is the derivation described in the paper's footnote 1:
        ``po; [F_kind]; po``.
        """
        fkind = Relation.lift(
            self.n,
            (i for i in self.fences if self.events[i].has(kind)),
        )
        return self.po.then(fkind, self.po)

    # ------------------------------------------------------------------
    # Transactions (section 3.1)
    # ------------------------------------------------------------------

    @cached_property
    def stxn(self) -> Relation:
        """The successful-transaction relation: a partial equivalence whose
        classes are the transactions (reflexive on transactional events)."""
        rel = Relation.empty(self.n)
        for txn in self.txns:
            rel = rel | Relation.cross(self.n, txn.events, txn.events)
        return rel

    @cached_property
    def stxnat(self) -> Relation:
        """The sub-relation of ``stxn`` for *atomic* transactions (C++)."""
        rel = Relation.empty(self.n)
        for txn in self.txns:
            if txn.atomic:
                rel = rel | Relation.cross(self.n, txn.events, txn.events)
        return rel

    @cached_property
    def txn_events(self) -> frozenset[int]:
        """All events inside some successful transaction."""
        return frozenset(e for txn in self.txns for e in txn.events)

    @cached_property
    def tfence(self) -> Relation:
        """Implicit transaction-boundary fences (sections 5.2, 6.1):
        ``po ∩ ((¬stxn; stxn) ∪ (stxn; ¬stxn))``.
        """
        if not self.txns:
            return Relation.empty(self.n)
        not_stxn = self.stxn.complement()
        boundary = (not_stxn @ self.stxn) | (self.stxn @ not_stxn)
        return self.po & boundary

    # ------------------------------------------------------------------
    # Surgery (used by section 4.2 minimisation and the metatheory)
    # ------------------------------------------------------------------

    def _renumber(self, keep: Sequence[int]) -> dict[int, int]:
        return {old: new for new, old in enumerate(keep)}

    def without_event(self, eid: int) -> "Execution":
        """Remove an event and all incident edges (weakening (i))."""
        keep = [i for i in range(self.n) if i != eid]
        remap = self._renumber(keep)

        def map_pairs(pairs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
            return [
                (remap[a], remap[b]) for a, b in pairs if a != eid and b != eid
            ]

        threads = [
            [remap[i] for i in thread if i != eid] for thread in self.threads
        ]
        txns = []
        for txn in self.txns:
            kept = tuple(remap[i] for i in txn.events if i != eid)
            if kept:
                txns.append(Transaction(kept, txn.atomic))
        return Execution(
            events=[self.events[i] for i in keep],
            threads=[t for t in threads if t],
            rf={remap[r]: remap[w] for r, w in self.rf.items() if eid not in (r, w)},
            co={
                loc: tuple(remap[w] for w in order if w != eid)
                for loc, order in self.co.items()
            },
            addr=map_pairs(self.addr),
            data=map_pairs(self.data),
            ctrl=map_pairs(self.ctrl),
            rmw=map_pairs(self.rmw),
            txns=txns,
        )

    def without_dep(self, kind: str, pair: tuple[int, int]) -> "Execution":
        """Remove a single dependency/rmw edge (weakening (ii))."""
        fields = {
            "addr": set(self.addr),
            "data": set(self.data),
            "ctrl": set(self.ctrl),
            "rmw": set(self.rmw),
        }
        if kind not in fields:
            raise ValueError(f"unknown dependency kind {kind!r}")
        fields[kind].discard(pair)
        return Execution(
            events=self.events,
            threads=self.threads,
            rf=self.rf,
            co=self.co,
            txns=self.txns,
            **fields,
        )

    def with_event(self, eid: int, event: Event) -> "Execution":
        """Replace the event at ``eid`` (used for downgrading, (iii))."""
        events = list(self.events)
        events[eid] = event
        return Execution(
            events=events,
            threads=self.threads,
            rf=self.rf,
            co=self.co,
            addr=self.addr,
            data=self.data,
            ctrl=self.ctrl,
            rmw=self.rmw,
            txns=self.txns,
        )

    def with_txns(self, txns: Sequence[Transaction]) -> "Execution":
        """Replace the transaction structure (weakening (v), coalescing…)."""
        return Execution(
            events=self.events,
            threads=self.threads,
            rf=self.rf,
            co=self.co,
            addr=self.addr,
            data=self.data,
            ctrl=self.ctrl,
            rmw=self.rmw,
            txns=txns,
        )

    def without_transactions(self) -> "Execution":
        """The non-transactional baseline view of this execution."""
        return self.with_txns(())

    # ------------------------------------------------------------------
    # Values (used by litmus-test generation, section 2.2)
    # ------------------------------------------------------------------

    @cached_property
    def write_values(self) -> dict[int, int]:
        """Assign each write a unique non-zero value: its coherence position.

        Writes to a location with no ``co`` entry (single write) get 1.
        """
        values: dict[int, int] = {}
        for loc in self.locations:
            order = self.co.get(loc)
            if order:
                for pos, w in enumerate(order):
                    values[w] = pos + 1
            else:
                for w in sorted(self.writes):
                    if self.events[w].loc == loc:
                        values[w] = 1
        return values

    def read_value(self, rid: int) -> int:
        """The value observed by read ``rid`` (0 for the initial value)."""
        w = self.rf.get(rid)
        return 0 if w is None else self.write_values[w]

    def final_value(self, loc: str) -> int:
        """The final value of ``loc``: that of the co-last write (or 0)."""
        order = self.co.get(loc)
        if order:
            return self.write_values[order[-1]]
        candidates = [
            self.write_values[w]
            for w in self.writes
            if self.events[w].loc == loc
        ]
        return candidates[0] if candidates else 0

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------

    @cached_property
    def _signature(self) -> tuple:
        return (
            self.events,
            self.threads,
            tuple(sorted(self.rf.items())),
            tuple(sorted(self.co.items())),
            tuple(sorted(self.addr)),
            tuple(sorted(self.data)),
            tuple(sorted(self.ctrl)),
            tuple(sorted(self.rmw)),
            tuple((txn.events, txn.atomic) for txn in self.txns),
        )

    def signature(self) -> tuple:
        """A hashable value identifying the execution up to nothing (exact
        structural identity); used for deduplication in the synthesizer.
        Cached — executions are immutable and the synthesizer and the
        campaign engine's memo hash the same execution repeatedly."""
        return self._signature

    @cached_property
    def _sig_hash(self) -> int:
        return hash(self._signature)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Execution):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return self._sig_hash

    def __repr__(self) -> str:
        parts = [f"{len(self.events)} events", f"{len(self.threads)} threads"]
        if self.txns:
            parts.append(f"{len(self.txns)} txns")
        return f"Execution({', '.join(parts)})"

    def describe(self) -> str:
        """A multi-line human-readable rendering (for examples and debug)."""
        lines = []
        for tid, thread in enumerate(self.threads):
            lines.append(f"thread {tid}:")
            for eid in thread:
                event = self.events[eid]
                marks = []
                if eid in self.txn_of:
                    txn = self.txns[self.txn_of[eid]]
                    marks.append("txn" + ("(atomic)" if txn.atomic else ""))
                if eid in self.rf:
                    marks.append(f"rf<-e{self.rf[eid]}")
                elif event.is_read:
                    marks.append("rf<-init")
                suffix = f"  [{' '.join(marks)}]" if marks else ""
                lines.append(f"  e{eid}: {event}{suffix}")
        for loc, order in sorted(self.co.items()):
            if len(order) > 1:
                chain = " -> ".join(f"e{w}" for w in order)
                lines.append(f"co({loc}): {chain}")
        for name, pairs in (
            ("addr", self.addr),
            ("data", self.data),
            ("ctrl", self.ctrl),
            ("rmw", self.rmw),
        ):
            for a, b in sorted(pairs):
                lines.append(f"{name}: e{a} -> e{b}")
        return "\n".join(lines)
