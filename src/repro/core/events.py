"""Events: the vertices of execution graphs (paper section 2.1).

Events are partitioned into reads (``R``), writes (``W``), and fences
(``F``).  Following the paper, fences are *events* rather than edges
because this simplifies execution minimisation (section 4.2 footnote 1);
architecture-specific fence relations are derived from them in
:mod:`repro.core.execution`.

For the lock-elision study (section 8.3) executions are additionally
extended with *call* events (``L``, ``U``, ``Lt``, ``Ut``) representing
``lock()``/``unlock()`` method calls; these use :data:`EventKind.CALL`.

Architecture- and language-specific distinctions (acquire/release,
SC atomics, fence flavours, exclusives) are expressed as string *labels*
attached to events; the label vocabulary is defined here so every module
agrees on spelling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

__all__ = [
    "EventKind",
    "Event",
    "Label",
    "read",
    "write",
    "fence",
    "call",
]


class EventKind(enum.Enum):
    """The fundamental partition of events: reads, writes, fences, calls."""

    READ = "R"
    WRITE = "W"
    FENCE = "F"
    CALL = "C"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventKind.{self.name}"


class Label:
    """Label vocabulary shared by all architectures and C++.

    Labels are plain strings so events stay cheap and hashable; this class
    only namespaces the constants.
    """

    # Access orderings (ARMv8 acquire/release, C++ memory orders).
    ACQ = "acq"
    REL = "rel"
    ACQ_REL = "acqrel"
    SC = "sc"
    RLX = "rlx"
    #: C++ atomic accesses (``Ato`` in Fig. 9).  Non-atomic events carry no
    #: ``ATO`` label.
    ATO = "ato"
    #: Load-/store-exclusive halves of an RMW (Power/ARMv8).
    EXCL = "excl"

    # Fence flavours (one per architecture-specific fence instruction).
    MFENCE = "mfence"
    SYNC = "sync"
    LWSYNC = "lwsync"
    ISYNC = "isync"
    DMB = "dmb"
    DMB_LD = "dmb.ld"
    DMB_ST = "dmb.st"
    ISB = "isb"
    # RISC-V FENCE instructions, named by predecessor/successor sets.
    FENCE_RW_RW = "fence.rw.rw"
    FENCE_R_RW = "fence.r.rw"
    FENCE_RW_W = "fence.rw.w"
    FENCE_TSO = "fence.tso"

    # Lock-elision call events (section 8.3).
    LOCK = "lock"
    UNLOCK = "unlock"
    LOCK_T = "lock.t"
    UNLOCK_T = "unlock.t"

    #: All fence flavour labels, used by well-formedness checks.
    FENCE_KINDS = frozenset(
        {
            MFENCE,
            SYNC,
            LWSYNC,
            ISYNC,
            DMB,
            DMB_LD,
            DMB_ST,
            ISB,
            FENCE_RW_RW,
            FENCE_R_RW,
            FENCE_RW_W,
            FENCE_TSO,
        }
    )
    #: C++ memory-order labels.
    MODES = frozenset({RLX, ACQ, REL, ACQ_REL, SC})
    #: Lock-elision call labels.
    CALL_KINDS = frozenset({LOCK, UNLOCK, LOCK_T, UNLOCK_T})


@dataclass(frozen=True)
class Event:
    """A single memory event.

    Attributes:
        kind: read / write / fence / call.
        loc: the location accessed (``None`` for fences and calls; the
            lock-elision machinery gives call events no location because
            the lock variable only appears in the *concrete* execution).
        labels: architecture/language-specific decorations (see
            :class:`Label`).
    """

    kind: EventKind
    loc: str | None = None
    labels: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not isinstance(self.labels, frozenset):
            object.__setattr__(self, "labels", frozenset(self.labels))
        if self.kind in (EventKind.READ, EventKind.WRITE) and self.loc is None:
            raise ValueError(f"{self.kind.value} event requires a location")
        if self.kind in (EventKind.FENCE, EventKind.CALL) and self.loc is not None:
            raise ValueError(f"{self.kind.value} event must not have a location")

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    @property
    def is_read(self) -> bool:
        return self.kind is EventKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is EventKind.WRITE

    @property
    def is_fence(self) -> bool:
        return self.kind is EventKind.FENCE

    @property
    def is_call(self) -> bool:
        return self.kind is EventKind.CALL

    @property
    def is_access(self) -> bool:
        """True for reads and writes (events with a location)."""
        return self.kind in (EventKind.READ, EventKind.WRITE)

    def has(self, label: str) -> bool:
        """True iff the event carries ``label``."""
        return label in self.labels

    # ------------------------------------------------------------------
    # Derived attributes
    # ------------------------------------------------------------------

    @property
    def mode(self) -> str | None:
        """The C++ memory-order label carried by this event, if any."""
        modes = self.labels & Label.MODES
        if len(modes) > 1:
            raise ValueError(f"event carries several modes: {sorted(modes)}")
        return next(iter(modes), None)

    @property
    def fence_kind(self) -> str | None:
        """The architecture fence flavour of a fence event, if any."""
        kinds = self.labels & Label.FENCE_KINDS
        if len(kinds) > 1:
            raise ValueError(f"fence carries several kinds: {sorted(kinds)}")
        return next(iter(kinds), None)

    @property
    def call_kind(self) -> str | None:
        """The lock/unlock flavour of a call event, if any."""
        kinds = self.labels & Label.CALL_KINDS
        if len(kinds) > 1:
            raise ValueError(f"call carries several kinds: {sorted(kinds)}")
        return next(iter(kinds), None)

    # ------------------------------------------------------------------
    # Surgery
    # ------------------------------------------------------------------

    def with_labels(self, labels: frozenset[str]) -> "Event":
        """A copy of this event with ``labels`` replacing the current set."""
        return replace(self, labels=frozenset(labels))

    def add_labels(self, *labels: str) -> "Event":
        return self.with_labels(self.labels | set(labels))

    def drop_labels(self, *labels: str) -> "Event":
        return self.with_labels(self.labels - set(labels))

    def __str__(self) -> str:
        tags = ",".join(sorted(self.labels))
        body = self.kind.value + (f" {self.loc}" if self.loc else "")
        return f"{body}[{tags}]" if tags else body


def read(loc: str, *labels: str) -> Event:
    """Construct a read event on ``loc`` with the given labels."""
    return Event(EventKind.READ, loc, frozenset(labels))


def write(loc: str, *labels: str) -> Event:
    """Construct a write event on ``loc`` with the given labels."""
    return Event(EventKind.WRITE, loc, frozenset(labels))


def fence(kind: str, *labels: str) -> Event:
    """Construct a fence event of flavour ``kind`` (e.g. ``Label.SYNC``)."""
    return Event(EventKind.FENCE, None, frozenset((kind, *labels)))


def call(kind: str) -> Event:
    """Construct a lock-elision call event (``Label.LOCK`` etc.)."""
    return Event(EventKind.CALL, None, frozenset((kind,)))
