"""The transaction lifting operators of section 3.3.

``weaklift(r, t)`` relates whole transactions whenever ``r`` relates events
in different transactions; ``stronglift(r, t)`` additionally admits a
non-transactional event at either end::

    weaklift(r, t)   = t ; (r \\ t) ; t
    stronglift(r, t) = t? ; (r \\ t) ; t?

``t`` is expected to be a partial equivalence relation that is reflexive on
its domain, which :attr:`repro.core.execution.Execution.stxn` guarantees.
"""

from __future__ import annotations

from .relation import Relation

__all__ = ["weaklift", "stronglift"]


def weaklift(rel: Relation, txn: Relation) -> Relation:
    """``t ; (r \\ t) ; t`` — isolation of transactions from transactions."""
    return txn.then(rel - txn, txn)


def stronglift(rel: Relation, txn: Relation) -> Relation:
    """``t? ; (r \\ t) ; t?`` — isolation from all other events."""
    return txn.opt().then(rel - txn, txn.opt())
