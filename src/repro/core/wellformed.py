"""Execution well-formedness (paper sections 2.1, 3.1, and 8.3).

:func:`check` returns a list of human-readable violations (empty when the
execution is well-formed); :func:`require` raises on the first violation.
The checks mirror the paper's prose:

* ``po`` forms a strict total order per thread (guaranteed structurally by
  :class:`~repro.core.execution.Execution`, re-validated here);
* dependencies are within ``po`` and originate at a read;
* ``rmw`` links a read to a po-later write on the same location;
* ``rf`` connects same-location writes to reads, at most one per read;
* ``co`` totally orders the writes of each location;
* each transaction is a contiguous po-interval of one thread, and
  transactions do not overlap (``stxn`` is a partial equivalence whose
  classes are contiguous in ``po``);
* lock-elision call events obey the L/U/Lt/Ut bracketing discipline.
"""

from __future__ import annotations

from .events import EventKind, Label
from .execution import Execution

__all__ = ["check", "require", "is_wellformed", "WellformednessError", "check_cpp"]


class WellformednessError(ValueError):
    """Raised by :func:`require` on an ill-formed execution."""


def check(execution: Execution, allow_calls: bool = False) -> list[str]:
    """Return all well-formedness violations of ``execution``."""
    problems: list[str] = []
    problems.extend(_check_threads(execution))
    problems.extend(_check_dependencies(execution))
    problems.extend(_check_rmw(execution))
    problems.extend(_check_rf(execution))
    problems.extend(_check_co(execution))
    problems.extend(_check_txns(execution))
    if allow_calls:
        problems.extend(_check_calls(execution))
    elif execution.calls:
        problems.append("call events present but allow_calls=False")
    return problems


def is_wellformed(execution: Execution, allow_calls: bool = False) -> bool:
    """True iff ``execution`` has no well-formedness violations."""
    return not check(execution, allow_calls=allow_calls)


def require(execution: Execution, allow_calls: bool = False) -> Execution:
    """Raise :class:`WellformednessError` unless well-formed; else return
    the execution unchanged (handy for pipelining)."""
    problems = check(execution, allow_calls=allow_calls)
    if problems:
        raise WellformednessError("; ".join(problems))
    return execution


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------


def _check_threads(x: Execution) -> list[str]:
    problems = []
    seen: set[int] = set()
    for tid, thread in enumerate(x.threads):
        if not thread:
            problems.append(f"thread {tid} is empty")
        for eid in thread:
            if eid in seen:
                problems.append(f"event e{eid} appears in several threads")
            seen.add(eid)
            if not 0 <= eid < x.n:
                problems.append(f"event id e{eid} out of range")
    if seen != set(range(x.n)):
        missing = sorted(set(range(x.n)) - seen)
        problems.append(f"events not in any thread: {missing}")
    return problems


def _check_dependencies(x: Execution) -> list[str]:
    problems = []
    for name, pairs in (("addr", x.addr), ("data", x.data), ("ctrl", x.ctrl)):
        for a, b in pairs:
            if not x.events[a].is_read:
                problems.append(f"{name} edge e{a}->e{b} does not start at a read")
            if (a, b) not in x.po:
                problems.append(f"{name} edge e{a}->e{b} is not within po")
            if name in ("addr", "data") and x.events[b].is_fence:
                problems.append(f"{name} edge e{a}->e{b} targets a fence")
    for a, b in x.data:
        if not x.events[b].is_write:
            problems.append(f"data edge e{a}->e{b} does not target a write")
    return problems


def _check_rmw(x: Execution) -> list[str]:
    problems = []
    read_halves: set[int] = set()
    write_halves: set[int] = set()
    for r, w in x.rmw:
        if not x.events[r].is_read or not x.events[w].is_write:
            problems.append(f"rmw edge e{r}->e{w} is not read->write")
            continue
        if (r, w) not in x.po:
            problems.append(f"rmw edge e{r}->e{w} is not within po")
        if x.events[r].loc != x.events[w].loc:
            problems.append(f"rmw edge e{r}->e{w} spans different locations")
        if r in read_halves or w in write_halves:
            problems.append(f"event reused across rmw pairs at e{r}->e{w}")
        read_halves.add(r)
        write_halves.add(w)
    return problems


def _check_rf(x: Execution) -> list[str]:
    problems = []
    for r, w in x.rf.items():
        if not x.events[r].is_read:
            problems.append(f"rf target e{r} is not a read")
            continue
        if not x.events[w].is_write:
            problems.append(f"rf source e{w} is not a write")
            continue
        if x.events[r].loc != x.events[w].loc:
            problems.append(f"rf edge e{w}->e{r} spans different locations")
    return problems


def _check_co(x: Execution) -> list[str]:
    problems = []
    writes_by_loc: dict[str, set[int]] = {}
    for w in x.writes:
        writes_by_loc.setdefault(x.events[w].loc, set()).add(w)
    for loc, order in x.co.items():
        if len(set(order)) != len(order):
            problems.append(f"co({loc}) repeats a write")
        expected = writes_by_loc.get(loc, set())
        if set(order) != expected:
            problems.append(
                f"co({loc}) must order exactly the writes to {loc}"
            )
        for w in order:
            if w < 0 or w >= x.n or not x.events[w].is_write:
                problems.append(f"co({loc}) contains non-write e{w}")
    for loc, ws in writes_by_loc.items():
        if len(ws) > 1 and loc not in x.co:
            problems.append(f"location {loc} has several writes but no co order")
    return problems


def _check_txns(x: Execution) -> list[str]:
    problems = []
    used: set[int] = set()
    for idx, txn in enumerate(x.txns):
        tids = {x.tid_of.get(e) for e in txn.events}
        if len(tids) != 1 or None in tids:
            problems.append(f"txn {idx} spans several threads")
            continue
        thread = x.threads[tids.pop()]
        positions = sorted(thread.index(e) for e in txn.events)
        if positions != list(range(positions[0], positions[0] + len(positions))):
            problems.append(f"txn {idx} is not contiguous in po")
        if tuple(txn.events) != tuple(
            thread[p] for p in sorted(thread.index(e) for e in txn.events)
        ):
            problems.append(f"txn {idx} events not listed in program order")
        overlap = used & set(txn.events)
        if overlap:
            problems.append(f"txn {idx} overlaps another transaction")
        used.update(txn.events)
    return problems


_OPENERS = {Label.LOCK: Label.UNLOCK, Label.LOCK_T: Label.UNLOCK_T}


def _check_calls(x: Execution) -> list[str]:
    """Every L must be followed by a matching U with no interleaved
    lock/unlock of the other flavour, per section 8.3."""
    problems = []
    for tid, thread in enumerate(x.threads):
        expected_close: str | None = None
        for eid in thread:
            event = x.events[eid]
            if not event.is_call:
                continue
            kind = event.call_kind
            if kind in _OPENERS:
                if expected_close is not None:
                    problems.append(
                        f"thread {tid}: nested lock call at e{eid}"
                    )
                expected_close = _OPENERS[kind]
            else:
                if kind != expected_close:
                    problems.append(
                        f"thread {tid}: unmatched unlock call at e{eid}"
                    )
                expected_close = None
        if expected_close is not None:
            problems.append(f"thread {tid}: lock without unlock")
    return problems


# ----------------------------------------------------------------------
# C++-specific well-formedness (section 7)
# ----------------------------------------------------------------------


def check_cpp(x: Execution) -> list[str]:
    """C++ extras: mode labels only on atomics, SC ⊆ Ato, rmw halves
    atomic, and atomic transactions free of atomic operations (the §7
    restriction that makes Theorem 7.2 go through)."""
    problems = []
    for eid, event in enumerate(x.events):
        mode = event.mode
        if event.is_access:
            if event.has(Label.ATO) and mode is None:
                problems.append(f"e{eid}: atomic access without a memory order")
            if not event.has(Label.ATO) and mode is not None:
                problems.append(f"e{eid}: non-atomic access with memory order")
        if event.is_fence and mode is None:
            problems.append(f"e{eid}: C++ fence without a memory order")
    for r, w in x.rmw:
        if not (x.events[r].has(Label.ATO) and x.events[w].has(Label.ATO)):
            problems.append(f"rmw e{r}->e{w} with non-atomic halves")
    for idx, txn in enumerate(x.txns):
        if txn.atomic:
            for e in txn.events:
                if x.events[e].has(Label.ATO):
                    problems.append(
                        f"atomic txn {idx} contains atomic operation e{e}"
                    )
    return problems
