"""A small DSL for constructing executions.

Every execution figure in the paper is expressed in a few lines::

    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")            # a: W x
    c = t1.write("x")            # c: W x
    e = t1.read("x")             # b: R x
    b.rf(a, e)                   # reads-from edge
    b.co(a, c)                   # coherence a before c
    x = b.build()

Writes default to coherence order = construction order per location; call
:meth:`ExecutionBuilder.co` or :meth:`ExecutionBuilder.co_order` to
override.  Event handles are plain integers (the event ids of the final
execution).
"""

from __future__ import annotations

from typing import Sequence

from .events import Event, EventKind, Label, call, fence, read, write
from .execution import Execution, Transaction

__all__ = ["ExecutionBuilder", "ThreadBuilder"]


class ThreadBuilder:
    """Accumulates the events of one thread in program order."""

    def __init__(self, parent: "ExecutionBuilder") -> None:
        self._parent = parent
        self.events: list[int] = []

    def _add(self, event: Event) -> int:
        eid = self._parent._add_event(event)
        self.events.append(eid)
        return eid

    def read(self, loc: str, *labels: str) -> int:
        """Append a read of ``loc``; returns the event id."""
        return self._add(read(loc, *labels))

    def write(self, loc: str, *labels: str) -> int:
        """Append a write to ``loc``; returns the event id."""
        return self._add(write(loc, *labels))

    def fence(self, kind: str, *labels: str) -> int:
        """Append a fence of the given flavour (e.g. ``Label.SYNC``)."""
        return self._add(fence(kind, *labels))

    def call(self, kind: str) -> int:
        """Append a lock-elision call event (``Label.LOCK`` etc.)."""
        return self._add(call(kind))

    # Convenience wrappers used heavily by the catalog -----------------

    def acq_read(self, loc: str, *labels: str) -> int:
        return self.read(loc, Label.ACQ, *labels)

    def rel_write(self, loc: str, *labels: str) -> int:
        return self.write(loc, Label.REL, *labels)

    def atomic_read(self, loc: str, mode: str = Label.RLX) -> int:
        """A C++ atomic load with the given memory order."""
        return self.read(loc, Label.ATO, mode)

    def atomic_write(self, loc: str, mode: str = Label.RLX) -> int:
        """A C++ atomic store with the given memory order."""
        return self.write(loc, Label.ATO, mode)


class ExecutionBuilder:
    """Builds an :class:`~repro.core.execution.Execution` incrementally."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._threads: list[ThreadBuilder] = []
        self._rf: dict[int, int] = {}
        self._co_constraints: list[tuple[int, int]] = []
        self._co_orders: dict[str, tuple[int, ...]] = {}
        self._addr: set[tuple[int, int]] = set()
        self._data: set[tuple[int, int]] = set()
        self._ctrl: set[tuple[int, int]] = set()
        self._rmw: set[tuple[int, int]] = set()
        self._txns: list[Transaction] = []

    def _add_event(self, event: Event) -> int:
        self._events.append(event)
        return len(self._events) - 1

    def thread(self) -> ThreadBuilder:
        """Start a new thread; events added to it are in program order."""
        tb = ThreadBuilder(self)
        self._threads.append(tb)
        return tb

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def rf(self, w: int, r: int) -> None:
        """Record that read ``r`` observes write ``w``."""
        if not self._events[w].is_write or not self._events[r].is_read:
            raise ValueError("rf must go from a write to a read")
        self._rf[r] = w

    def co(self, *writes: int) -> None:
        """Constrain coherence: each write precedes the next."""
        for a, b in zip(writes, writes[1:]):
            self._co_constraints.append((a, b))

    def co_order(self, loc: str, order: Sequence[int]) -> None:
        """Fix the complete coherence order for ``loc`` explicitly."""
        self._co_orders[loc] = tuple(order)

    def addr(self, r: int, e: int) -> None:
        """Address dependency from read ``r`` to ``e``."""
        self._addr.add((r, e))

    def data(self, r: int, w: int) -> None:
        """Data dependency from read ``r`` to write ``w``."""
        self._data.add((r, w))

    def ctrl(self, r: int, e: int) -> None:
        """Control dependency from read ``r`` to ``e``."""
        self._ctrl.add((r, e))

    def ctrl_after(self, r: int) -> None:
        """Control dependency from ``r`` to every po-later event in its
        thread *at build time* (control dependencies are downward-closed
        in real ISAs)."""
        self._ctrl.add((r, -1))  # sentinel expanded in build()

    def rmw(self, r: int, w: int) -> None:
        """Mark ``(r, w)`` as the two halves of an RMW operation."""
        self._rmw.add((r, w))

    def txn(self, events: Sequence[int], atomic: bool = False) -> None:
        """Mark ``events`` (contiguous in one thread) as a successful
        transaction; ``atomic=True`` makes it a C++ atomic transaction."""
        self._txns.append(Transaction(tuple(events), atomic))

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def _coherence(self) -> dict[str, tuple[int, ...]]:
        """Resolve the per-location coherence orders.

        Default order is construction order; explicit :meth:`co`
        constraints reorder via a stable topological pass, and
        :meth:`co_order` overrides entirely.
        """
        by_loc: dict[str, list[int]] = {}
        for eid, event in enumerate(self._events):
            if event.is_write:
                by_loc.setdefault(event.loc, []).append(eid)
        out: dict[str, tuple[int, ...]] = {}
        for loc, ws in by_loc.items():
            if loc in self._co_orders:
                order = self._co_orders[loc]
                if sorted(order) != sorted(ws):
                    raise ValueError(
                        f"co_order for {loc!r} must mention exactly its writes"
                    )
                out[loc] = order
                continue
            constraints = [
                (a, b) for a, b in self._co_constraints if a in ws and b in ws
            ]
            order_list = list(ws)
            # Stable insertion sort honouring the explicit constraints.
            for _ in range(len(order_list)):
                moved = False
                for a, b in constraints:
                    ia, ib = order_list.index(a), order_list.index(b)
                    if ia > ib:
                        order_list.pop(ia)
                        order_list.insert(ib, a)
                        moved = True
                if not moved:
                    break
            out[loc] = tuple(order_list)
        return out

    def build(self) -> Execution:
        """Produce the (immutable) execution."""
        threads = [tb.events for tb in self._threads if tb.events]
        # Expand ctrl_after sentinels.
        ctrl = set()
        for r, e in self._ctrl:
            if e == -1:
                for thread in threads:
                    if r in thread:
                        idx = thread.index(r)
                        ctrl.update((r, later) for later in thread[idx + 1:])
            else:
                ctrl.add((r, e))
        return Execution(
            events=self._events,
            threads=threads,
            rf=self._rf,
            co=self._coherence(),
            addr=self._addr,
            data=self._data,
            ctrl=ctrl,
            rmw=self._rmw,
            txns=self._txns,
        )
