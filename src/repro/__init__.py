"""repro: transactions and weak memory in x86, Power, ARMv8, and C++.

A from-scratch reproduction of Chong, Sorensen & Wickerson, *The Semantics
of Transactions and Weak Memory in x86, Power, ARM, and C++* (PLDI 2018):
axiomatic memory models extended with transactions, a bounded synthesizer
of conformance litmus tests, litmus tooling, simulated hardware back-ends,
and bounded metatheory checkers.

Quickstart::

    from repro import ExecutionBuilder, get_model

    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")
    c = t1.write("x")
    d = t1.read("x")
    b.txn([c, d])            # c and d form a successful transaction
    b.rf(a, d)               # the txn read observes the external write
    b.co(c, a)               # ...which coherence-follows the txn write
    x = b.build()

    print(get_model("x86").check(x))   # INCONSISTENT (StrongIsol)
"""

from .core import (
    Event,
    EventKind,
    Execution,
    ExecutionBuilder,
    Label,
    Relation,
    Transaction,
    stronglift,
    weaklift,
)
from .models import (
    ARMv8,
    RiscV,
    Cpp,
    MemoryModel,
    Power,
    SC,
    TSC,
    Verdict,
    X86,
    get_model,
    model_names,
)

__version__ = "1.0.0"

__all__ = [
    "ARMv8",
    "RiscV",
    "Cpp",
    "Event",
    "EventKind",
    "Execution",
    "ExecutionBuilder",
    "Label",
    "MemoryModel",
    "Power",
    "Relation",
    "SC",
    "TSC",
    "Transaction",
    "Verdict",
    "X86",
    "get_model",
    "model_names",
    "stronglift",
    "weaklift",
    "__version__",
]
