"""The telemetry bundle: one switch for tracer + metrics registry.

:func:`enable` installs a fresh :class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` behind their module-global
``ACTIVE`` guards and snapshots the process-wide IR evaluator counters
(:data:`repro.ir.eval.STATS`) as a baseline, so :func:`snapshot`
reports evaluator work *since enable* rather than since import.

Cross-process flow (the campaign engine's worker protocol):

1. the parent enables telemetry and dispatches units tagged
   ``telemetry=True``;
2. pool workers start with :func:`reset_worker_state` (installed as the
   ProcessPool initializer), so a forked child never records into an
   inherited copy of the parent's tracer;
3. each tagged unit runs under :func:`collect`, which enables an
   ephemeral local bundle and returns its combined snapshot with the
   unit's results;
4. the parent folds every returned snapshot in with
   :func:`merge_snapshot` — stage self-times, counters, histograms and
   spans recorded inside workers all land in the parent's bundle.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from . import metrics as _metrics
from . import trace as _trace

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "active",
    "snapshot",
    "merge_snapshot",
    "collect",
    "reset_worker_state",
]


class Telemetry:
    """The live tracer + metrics pair (and the IR-counter baseline)."""

    def __init__(self, tracer: _trace.Tracer, registry) -> None:
        self.tracer = tracer
        self.metrics = registry
        self._ir_baseline = _ir_totals()

    def snapshot(self, spans: bool = True) -> dict:
        """Everything recorded since enable, as one mergeable dict."""
        snap = {
            "trace": self.tracer.snapshot(spans=spans),
            "metrics": self.metrics.snapshot(),
        }
        base = self._ir_baseline
        now = _ir_totals()
        counters = snap["trace"]["counters"]
        for name, value in now.items():
            delta = value - base.get(name, 0)
            if delta:
                counters[name] = counters.get(name, 0) + delta
        return snap

    def merge(self, snap: dict | None) -> None:
        if not snap:
            return
        self.tracer.merge(snap.get("trace"))
        self.metrics.merge(snap.get("metrics"))


_ACTIVE: Telemetry | None = None


def _ir_totals() -> dict[str, int]:
    """The process-wide IR evaluator counters (always-on, cheap)."""
    try:
        from ..ir.eval import STATS
    except Exception:  # pragma: no cover - partial installs
        return {}
    return {
        "ir_node_computes": STATS.computes,
        "ir_fix_iterations": STATS.fix_iterations,
        "ir_memo_hits": STATS.memo_hits,
        "ir_batch_computes": STATS.batch_computes,
        "ir_batch_candidates": STATS.batch_candidates,
    }


def enable(
    ring: int = _trace.DEFAULT_RING,
    sink: "str | Path | None" = None,
) -> Telemetry:
    """Install tracer + metrics and return the bundle.

    ``sink`` names a JSONL trace-sidecar path; spans stream to it as
    they complete (see :mod:`repro.obs.trace`).
    """
    global _ACTIVE
    tracer = _trace.enable(ring=ring, sink=sink)
    registry = _metrics.enable()
    _ACTIVE = Telemetry(tracer, registry)
    return _ACTIVE


def disable() -> Telemetry | None:
    """Uninstall both halves; returns the retired bundle for reading."""
    global _ACTIVE
    bundle, _ACTIVE = _ACTIVE, None
    _trace.disable()
    _metrics.disable()
    return bundle


def active() -> Telemetry | None:
    return _ACTIVE


def snapshot(spans: bool = True) -> dict | None:
    """The active bundle's snapshot, or ``None`` when telemetry is off."""
    return _ACTIVE.snapshot(spans=spans) if _ACTIVE is not None else None


def merge_snapshot(snap: dict | None) -> None:
    """Fold a worker snapshot into the active bundle (no-op when off)."""
    if _ACTIVE is not None and snap:
        _ACTIVE.merge(snap)


def reset_worker_state() -> None:
    """Drop telemetry state in a freshly started pool worker.

    Forked children inherit the parent's ``ACTIVE`` objects; recording
    into those copies would be silently lost.  Installed as the worker
    initializer by :func:`repro.engine.pool.parallel_map`, this resets
    the guards so tagged units create their own collectors and ship
    snapshots home instead.
    """
    global _ACTIVE
    _ACTIVE = None
    _trace.ACTIVE = None
    _metrics.ACTIVE = None


class _Collection:
    """Result holder for :func:`collect` (snapshot filled on exit)."""

    __slots__ = ("snapshot",)

    def __init__(self) -> None:
        self.snapshot: dict | None = None


@contextmanager
def collect(ring: int = 1024) -> Iterator[_Collection]:
    """Ephemeral telemetry around one worker unit.

    If telemetry is already active in this process (the serial path —
    the parent's own collectors see the work directly), this is a
    no-op and the holder's snapshot stays ``None``.
    """
    holder = _Collection()
    if _ACTIVE is not None or _trace.ACTIVE is not None:
        yield holder
        return
    enable(ring=ring)
    try:
        yield holder
    finally:
        bundle = disable()
        if bundle is not None:
            holder.snapshot = bundle.snapshot()
