"""Mergeable metrics: counters, gauges, and streaming histograms.

The registry complements the span tracer with *value* instrumentation:
how many cells were computed, how big the cache is, what the per-model
cell-latency percentiles look like.  Every instrument is designed to be
**mergeable** — a ProcessPool worker serializes its registry with
:meth:`MetricsRegistry.snapshot`, ships the dict back with its chunk
results, and the parent folds it in with :meth:`MetricsRegistry.merge`;
fleet-wide numbers are exact sums (counters/gauges) or exact bucket
sums (histograms).

Histograms are geometric fixed-bucket: observations land in buckets
whose bounds grow by ``2**(1/8)`` (~9% apart), so quantile estimates
carry at most ~4.5% relative error, merging is bucket-count addition,
and a snapshot is a small sparse dict however many observations were
recorded — the standard trick of HdrHistogram-style stores.

Like the tracer, the registry is off by default behind a module-global
``ACTIVE`` read.
"""

from __future__ import annotations

import math

__all__ = [
    "METRICS_SCHEMA",
    "METRICS_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ACTIVE",
    "enable",
    "disable",
]

METRICS_SCHEMA = "repro.metrics"
METRICS_VERSION = 1

#: Buckets per power of two: bounds are ``2**(i / GRANULARITY)``.
GRANULARITY = 8


def _metric_name(name: str) -> str:
    """``name`` restricted to the Prometheus metric charset."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return out if not out[:1].isdigit() else f"_{out}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A streaming geometric-bucket histogram with percentile queries."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @staticmethod
    def _index(value: float) -> int:
        if value <= 0.0:
            return -(10**6)  # dedicated underflow bucket
        return math.ceil(math.log2(value) * GRANULARITY)

    @staticmethod
    def _bound(index: int) -> float:
        if index <= -(10**6):
            return 0.0
        return 2.0 ** (index / GRANULARITY)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (bucket upper bound,
        exact at the recorded extremes)."""
        if not self.count:
            return 0.0
        if q <= 0:
            return self.min
        if q >= 1:
            return self.max
        rank = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(self._bound(index), self.max)
        return self.max  # pragma: no cover - rank <= count always lands

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": round(self.total, 9),
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(k): v for k, v in self.buckets.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        h = cls()
        h.merge(data)
        return h

    def merge(self, data: dict) -> None:
        self.count += data.get("count", 0)
        self.total += data.get("total", 0.0)
        low, high = data.get("min"), data.get("max")
        if low is not None and low < self.min:
            self.min = low
        if high is not None and high > self.max:
            self.max = high
        for key, n in data.get("buckets", {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + n

    def summary(self) -> dict:
        """The percentile digest manifests store per model."""
        return {
            "count": self.count,
            "mean": round(self.mean, 9),
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
            "p99": round(self.percentile(0.99), 9),
            "max": round(self.max, 9) if self.count else 0.0,
        }


class MetricsRegistry:
    """Named instruments, lazily created on first touch."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument access ----------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # -- serialization ---------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "schema": METRICS_SCHEMA,
            "version": METRICS_VERSION,
            "counters": {k: c.value for k, c in self.counters.items()},
            "gauges": {k: g.value for k, g in self.gauges.items()},
            "histograms": {
                k: h.to_dict() for k, h in self.histograms.items()
            },
        }

    def merge(self, snap: dict | None) -> None:
        """Fold a worker snapshot in: counters/histograms add, gauges
        take the incoming value (last write wins)."""
        if not snap:
            return
        if snap.get("schema") not in (None, METRICS_SCHEMA):
            raise ValueError(
                f"not a metrics snapshot: {snap.get('schema')!r}"
            )
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            self.histogram(name).merge(data)

    @classmethod
    def from_snapshot(cls, snap: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snap)
        return registry

    # -- exposition ------------------------------------------------------

    def render_text(self) -> str:
        """The registry in Prometheus text exposition format.

        Instrument names are sanitized to the ``[a-zA-Z0-9_]`` metric
        charset (``cell_seconds:x86`` → ``cell_seconds_x86``);
        histograms expose ``_count``/``_sum`` plus quantile samples.
        Served by the campaign service's ``/v1/metrics`` endpoint.
        """
        lines: list[str] = []
        for name, counter in sorted(self.counters.items()):
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self.gauges.items()):
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge.value}")
        for name, hist in sorted(self.histograms.items()):
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} summary")
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f'{metric}{{quantile="{q}"}} {hist.percentile(q)}'
                )
            lines.append(f"{metric}_count {hist.count}")
            lines.append(f"{metric}_sum {hist.total}")
        return "\n".join(lines) + "\n" if lines else ""


#: The active registry, or ``None`` when metrics are off.
ACTIVE: MetricsRegistry | None = None


def enable() -> MetricsRegistry:
    """Install and return a fresh registry (prefer ``obs.enable``)."""
    global ACTIVE
    ACTIVE = MetricsRegistry()
    return ACTIVE


def disable() -> "MetricsRegistry | None":
    global ACTIVE
    registry, ACTIVE = ACTIVE, None
    return registry
