"""``repro stats``: list, inspect, and diff recorded run manifests.

The diff is the point: perf regressions become visible by comparing two
manifests — cells/sec, cache hit rate, per-stage self time, per-model
latency percentiles — without rerunning either workload.  CI uses it
warn-only against committed baseline manifests (``--fail-over PCT``
turns regressions beyond a threshold into a nonzero exit).

Exit codes: 0 = ok (including "regressions found" in warn-only mode),
1 = ``--fail-over`` threshold exceeded, 2 = bad reference / unreadable
manifest / wrong schema generation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from .manifest import (
    ManifestError,
    RunManifest,
    list_manifests,
    resolve_run,
)

__all__ = ["MetricDelta", "diff_manifests", "format_diff", "cmd_stats"]


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric between run A and run B."""

    name: str
    a: float
    b: float
    higher_is_better: bool

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def pct(self) -> float | None:
        """Relative change in percent, ``None`` when A is zero."""
        return 100.0 * self.delta / self.a if self.a else None

    @property
    def regression(self) -> float:
        """How much *worse* B is than A, in percent (0 when improved)."""
        if self.pct is None:
            return 0.0
        worse = -self.pct if self.higher_is_better else self.pct
        return max(0.0, worse)


def _pairs(a: dict, b: dict) -> list[tuple[str, float, float]]:
    return [
        (name, float(a.get(name, 0.0) or 0.0), float(b.get(name, 0.0) or 0.0))
        for name in sorted(set(a) | set(b))
    ]


def diff_manifests(a: RunManifest, b: RunManifest) -> list[MetricDelta]:
    """Every comparable metric of two runs (A = baseline, B = fresh)."""
    out = [
        MetricDelta(
            "elapsed_seconds",
            a.elapsed_seconds,
            b.elapsed_seconds,
            higher_is_better=False,
        )
    ]
    for name, va, vb in _pairs(a.rates, b.rates):
        out.append(MetricDelta(f"rate:{name}", va, vb, higher_is_better=True))
    ha = a.cache.get("hit_rate")
    hb = b.cache.get("hit_rate")
    if ha is not None or hb is not None:
        out.append(
            MetricDelta(
                "cache_hit_rate",
                float(ha or 0.0),
                float(hb or 0.0),
                higher_is_better=True,
            )
        )
    stage_a = {k: v.get("seconds", 0.0) for k, v in a.stages.items()}
    stage_b = {k: v.get("seconds", 0.0) for k, v in b.stages.items()}
    for name, va, vb in _pairs(stage_a, stage_b):
        out.append(
            MetricDelta(f"stage:{name}", va, vb, higher_is_better=False)
        )
    for quantile in ("p50", "p95", "p99"):
        lat_a = {
            spec: digest.get(quantile, 0.0)
            for spec, digest in a.model_latency.items()
        }
        lat_b = {
            spec: digest.get(quantile, 0.0)
            for spec, digest in b.model_latency.items()
        }
        for spec in sorted(set(lat_a) & set(lat_b)):
            out.append(
                MetricDelta(
                    f"{quantile}:{spec}",
                    lat_a[spec],
                    lat_b[spec],
                    higher_is_better=False,
                )
            )
    return out


def format_diff(
    a: RunManifest,
    b: RunManifest,
    deltas: list[MetricDelta],
    threshold: float | None = None,
) -> str:
    """The diff table; regressions beyond ``threshold`` percent are
    flagged ``REGRESSED`` (informational without a threshold)."""
    lines = [
        f"A (baseline): {a.run_id}  ({a.kind}:{a.label})",
        f"B (fresh):    {b.run_id}  ({b.kind}:{b.label})",
        "",
        f"{'metric':<28} {'A':>12} {'B':>12} {'delta':>12}  change",
        "-" * 76,
    ]
    for d in deltas:
        if d.a == 0.0 and d.b == 0.0:
            continue
        pct = d.pct
        change = f"{pct:+8.1f}%" if pct is not None else "     new"
        flag = ""
        if threshold is not None and d.regression > threshold:
            flag = "  REGRESSED"
        elif d.regression > 0:
            flag = "  (worse)"
        lines.append(
            f"{d.name:<28} {d.a:>12.4f} {d.b:>12.4f} "
            f"{d.delta:>+12.4f}  {change}{flag}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def cmd_stats(args) -> int:
    """The ``repro stats <list|show|diff>`` dispatcher (see module doc)."""
    runs_dir = getattr(args, "runs_dir", None)
    action = args.action

    if action == "list":
        manifests = list_manifests(runs_dir)
        if not manifests:
            print("no recorded runs")
            return 0
        print(
            f"{'run_id':<26} {'kind':<9} {'label':<14} created (UTC)"
        )
        for m in manifests:
            print(m.describe())
        return 0

    if action == "show":
        if len(args.runs) != 1:
            print("error: stats show takes exactly one run", file=sys.stderr)
            return 2
        try:
            manifest = resolve_run(args.runs[0], runs_dir)
        except ManifestError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(manifest.format())
        return 0

    if action == "diff":
        if len(args.runs) != 2:
            print(
                "error: stats diff takes two runs (baseline, fresh)",
                file=sys.stderr,
            )
            return 2
        try:
            a = resolve_run(args.runs[0], runs_dir)
            b = resolve_run(args.runs[1], runs_dir)
        except ManifestError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        deltas = diff_manifests(a, b)
        threshold = getattr(args, "fail_over", None)
        print(format_diff(a, b, deltas, threshold=threshold))
        if threshold is not None:
            regressed = [d for d in deltas if d.regression > threshold]
            if regressed:
                print(
                    f"\n{len(regressed)} metric(s) regressed beyond "
                    f"{threshold:.1f}%:",
                    file=sys.stderr,
                )
                for d in regressed:
                    print(
                        f"  {d.name}: {d.a:.4f} -> {d.b:.4f} "
                        f"({d.regression:.1f}% worse)",
                        file=sys.stderr,
                    )
                return 1
        return 0

    print(f"error: unknown stats action {action!r}", file=sys.stderr)
    return 2
