"""Schema-versioned run manifests under ``.repro-cache/runs/``.

A *run manifest* is the persistent record of one checking invocation —
a campaign, a fuzz run, or a benchmark — written as a single JSON file
so historical runs can be listed, inspected, and *diffed* without
rerunning anything (``repro stats``).  The paper's own Tables 1–3 are
aggregate verdict/timing matrices; manifests are the raw material for
regenerating that kind of artefact from recorded telemetry.

Layout (``MANIFEST_VERSION`` 1)::

    {
      "schema": "repro.run-manifest", "version": 1,
      "run_id": "20260808T120301-1a2b3c4d",
      "kind": "campaign" | "fuzz" | "bench",
      "label": "corpus", "created": 1765193000.1, "argv": [...],
      "git": "539eb6f", "seed": null,
      "suite": {"items": 218, "digest": "sha256..."},
      "models": {"x86": "<definition token>", ...},
      "verdicts": {"cells": 1744, "digest": "sha256...",
                   "errors": 0, "diffs": 0},
      "cache": {"hits": 0, "misses": 1744, "hit_rate": 0.0,
                "entries": 1744, "bytes": 123456},
      "elapsed_seconds": 12.3,
      "rates": {"cells_per_second": 141.8, ...},
      "stages": {"expansion": {"seconds": 4.2, "calls": 9001}, ...},
      "counters": {"candidates": 12345, ...},
      "model_latency": {"x86": {"count": 218, "mean": ...,
                                "p50": ..., "p95": ..., "p99": ...}}
    }

Loading rejects manifests whose ``schema``/``version`` do not match —
the reader's diff semantics are only defined within one schema
generation.  Files are named ``<run_id>.json`` inside the runs
directory (``$REPRO_CACHE_DIR/runs`` or ``.repro-cache/runs``).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_VERSION",
    "ManifestError",
    "RunManifest",
    "default_runs_dir",
    "write_manifest",
    "load_manifest",
    "list_manifests",
    "resolve_run",
    "from_campaign",
    "from_fuzz",
    "from_rates",
]

MANIFEST_SCHEMA = "repro.run-manifest"
MANIFEST_VERSION = 1


class ManifestError(Exception):
    """Unreadable, unresolvable, or wrong-generation manifest."""


def default_runs_dir() -> Path:
    """``$REPRO_CACHE_DIR/runs`` or ``./.repro-cache/runs`` (mirrors
    :func:`repro.engine.cache.default_cache_dir` without importing the
    engine — obs sits below it)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache")) / "runs"


def git_describe() -> str | None:
    """``git describe --always --dirty`` of the CWD, or ``None``."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


@dataclass
class RunManifest:
    """One run's persistent record (see the module docstring)."""

    kind: str
    label: str
    created: float
    run_id: str = ""
    argv: list[str] = field(default_factory=list)
    git: str | None = None
    seed: int | None = None
    suite: dict = field(default_factory=dict)
    models: dict = field(default_factory=dict)
    verdicts: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    rates: dict = field(default_factory=dict)
    stages: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    model_latency: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.run_id:
            stamp = time.strftime(
                "%Y%m%dT%H%M%S", time.gmtime(self.created)
            )
            seed = hashlib.sha256(
                json.dumps(
                    [self.kind, self.label, self.created, self.argv],
                    sort_keys=True,
                ).encode()
            ).hexdigest()[:8]
            self.run_id = f"{stamp}-{seed}"

    def to_dict(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "created": self.created,
            "argv": self.argv,
            "git": self.git,
            "seed": self.seed,
            "suite": self.suite,
            "models": self.models,
            "verdicts": self.verdicts,
            "cache": self.cache,
            "elapsed_seconds": self.elapsed_seconds,
            "rates": self.rates,
            "stages": self.stages,
            "counters": self.counters,
            "model_latency": self.model_latency,
        }

    @classmethod
    def from_dict(cls, data: dict, source: str = "<dict>") -> "RunManifest":
        if data.get("schema") != MANIFEST_SCHEMA:
            raise ManifestError(
                f"{source}: not a run manifest "
                f"(schema={data.get('schema')!r})"
            )
        if data.get("version") != MANIFEST_VERSION:
            raise ManifestError(
                f"{source}: manifest version {data.get('version')!r} "
                f"!= supported {MANIFEST_VERSION}"
            )
        fields = {
            key: data[key]
            for key in (
                "run_id",
                "kind",
                "label",
                "created",
                "argv",
                "git",
                "seed",
                "suite",
                "models",
                "verdicts",
                "cache",
                "elapsed_seconds",
                "rates",
                "stages",
                "counters",
                "model_latency",
            )
            if key in data
        }
        return cls(**fields)

    # -- rendering -------------------------------------------------------

    def describe(self) -> str:
        """One listing row: id, kind/label, age-free timestamp, scale."""
        when = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.gmtime(self.created)
        )
        cells = self.verdicts.get("cells", "-")
        hit = self.cache.get("hit_rate")
        hit_text = f"{100 * hit:3.0f}%" if hit is not None else "   -"
        return (
            f"{self.run_id:<26} {self.kind:<9} {self.label:<14} {when}  "
            f"cells={cells!s:<7} hits={hit_text} "
            f"elapsed={self.elapsed_seconds:.2f}s"
        )

    def format(self) -> str:
        """The full single-run breakdown ``repro stats show`` prints."""
        lines = [
            f"run {self.run_id} ({self.kind}:{self.label})",
            f"  created: "
            + time.strftime("%Y-%m-%d %H:%M:%SZ", time.gmtime(self.created)),
        ]
        if self.git:
            lines.append(f"  git: {self.git}")
        if self.seed is not None:
            lines.append(f"  seed: {self.seed}")
        if self.argv:
            lines.append(f"  argv: {' '.join(self.argv)}")
        if self.suite:
            if "items" in self.suite:
                lines.append(
                    f"  suite: {self.suite['items']} items "
                    f"(digest {str(self.suite.get('digest', ''))[:12]})"
                )
            else:  # bench manifests carry free-form scale context
                parts = ", ".join(
                    f"{k}={v}" for k, v in sorted(self.suite.items())
                )
                lines.append(f"  suite: {parts}")
        if self.models:
            lines.append(f"  models: {', '.join(sorted(self.models))}")
        if self.verdicts:
            lines.append(
                f"  verdicts: {self.verdicts.get('cells', '?')} cells, "
                f"{self.verdicts.get('errors', 0)} errors, "
                f"{self.verdicts.get('diffs', 0)} diffs "
                f"(digest {str(self.verdicts.get('digest', ''))[:12]})"
            )
        if self.cache:
            hit = self.cache.get("hit_rate", 0.0)
            lines.append(
                f"  cache: {self.cache.get('hits', 0)} hits / "
                f"{self.cache.get('misses', 0)} misses "
                f"({100 * hit:.0f}%), {self.cache.get('entries', 0)} "
                f"entries, {self.cache.get('bytes', 0)} bytes"
            )
        lines.append(f"  elapsed: {self.elapsed_seconds:.4f}s")
        for name, value in sorted(self.rates.items()):
            lines.append(f"  rate {name}: {value:,.1f}")
        if self.stages:
            lines.append("  stages (self time):")
            for name, stats in sorted(
                self.stages.items(),
                key=lambda kv: -kv[1].get("seconds", 0.0),
            ):
                lines.append(
                    f"    {name:<12} {stats.get('seconds', 0.0):>9.4f}s"
                    f" {stats.get('calls', 0):>9} calls"
                )
        if self.model_latency:
            lines.append("  per-model cell latency:")
            for spec, digest in sorted(self.model_latency.items()):
                lines.append(
                    f"    {spec:<16} n={digest.get('count', 0):<6} "
                    f"p50={digest.get('p50', 0.0):.6f}s "
                    f"p95={digest.get('p95', 0.0):.6f}s "
                    f"p99={digest.get('p99', 0.0):.6f}s"
                )
        if self.counters:
            lines.append("  counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"    {name}: {value}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------


def write_manifest(
    manifest: RunManifest, runs_dir: "str | Path | None" = None
) -> Path:
    """Persist one manifest; returns the file written."""
    directory = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{manifest.run_id}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_manifest(path: "str | Path") -> RunManifest:
    path = Path(path)
    try:
        with path.open(encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ManifestError(f"{path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ManifestError(f"{path}: not JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise ManifestError(f"{path}: not a JSON object")
    return RunManifest.from_dict(data, source=str(path))


def list_manifests(
    runs_dir: "str | Path | None" = None,
) -> list[RunManifest]:
    """Every readable manifest in the runs directory, newest first.

    Wrong-generation or corrupt files are skipped, not fatal — a
    directory accumulated across tool versions must stay listable.
    """
    directory = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.glob("*.json")):
        try:
            out.append(load_manifest(path))
        except ManifestError:
            continue
    out.sort(key=lambda m: (m.created, m.run_id), reverse=True)
    return out


def resolve_run(
    token: str, runs_dir: "str | Path | None" = None
) -> RunManifest:
    """A manifest named by path, by ``last``/``last~N``, or by a unique
    run-id prefix."""
    path = Path(token)
    if path.is_file():
        return load_manifest(path)
    manifests = list_manifests(runs_dir)
    if token == "last":
        token = "last~0"
    if token.startswith("last~"):
        try:
            back = int(token[5:])
        except ValueError:
            raise ManifestError(f"bad run reference {token!r}") from None
        if back < 0 or back >= len(manifests):
            raise ManifestError(
                f"{token!r} out of range: {len(manifests)} runs recorded"
            )
        return manifests[back]
    matches = [m for m in manifests if m.run_id.startswith(token)]
    if not matches:
        raise ManifestError(f"no run matching {token!r}")
    if len(matches) > 1:
        ids = ", ".join(m.run_id for m in matches[:4])
        raise ManifestError(f"ambiguous run {token!r}: {ids}, ...")
    return matches[0]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def _verdict_digest(cells: dict) -> str:
    """Content hash of a verdict matrix: sorted (item, model, verdict)."""
    rows = sorted(
        (name, spec, bool(cell.verdict))
        for (name, spec), cell in cells.items()
    )
    return hashlib.sha256(
        json.dumps(rows, sort_keys=True).encode()
    ).hexdigest()


def _suite_digest(names: list[str]) -> str:
    return hashlib.sha256("\n".join(names).encode()).hexdigest()


def _stages_from(trace_snap: dict) -> dict:
    """Per-stage {seconds, calls} from a trace snapshot's aggregates."""
    seconds = trace_snap.get("seconds", {})
    calls = trace_snap.get("calls", {})
    return {
        name: {"seconds": round(secs, 6), "calls": calls.get(name, 0)}
        for name, secs in seconds.items()
    }


def _latency_from(metrics_snap: dict) -> dict:
    """Per-model latency summaries from ``cell_seconds:*`` histograms."""
    from .metrics import Histogram

    latency = {}
    for name, data in metrics_snap.get("histograms", {}).items():
        if name.startswith("cell_seconds:"):
            latency[name.split(":", 1)[1]] = Histogram.from_dict(
                data
            ).summary()
    return latency


def _definition_tokens(specs) -> dict:
    try:
        from ..engine.checkers import spec_definition_hash

        return {spec: spec_definition_hash(spec) for spec in specs}
    except Exception:
        return {spec: "" for spec in specs}


def from_campaign(
    result,
    kind: str = "campaign",
    label: str = "campaign",
    items=None,
    cache=None,
    seed: int | None = None,
    argv: list[str] | None = None,
    snapshot: dict | None = None,
    extra: dict | None = None,
    run_id: str = "",
) -> RunManifest:
    """Build a manifest from a :class:`CampaignResult` plus telemetry.

    ``snapshot`` is a telemetry snapshot (``obs.snapshot()``); when
    omitted the active bundle is snapshotted.  ``extra`` merges into the
    ``suite`` block (run knobs like the candidate batch size).
    ``run_id`` overrides the derived id — the campaign service keys job
    manifests by job id.  Everything is read duck-typed so obs never
    imports the engine.
    """
    from . import telemetry

    if snapshot is None:
        snapshot = telemetry.snapshot()
    trace_snap = (snapshot or {}).get("trace", {})
    metrics_snap = (snapshot or {}).get("metrics", {})
    stages = _stages_from(trace_snap)
    latency = _latency_from(metrics_snap)

    diffs = len(result.diffs(items)) if items is not None else 0
    elapsed = result.elapsed
    cells = len(result.cells)
    cache_stats = {}
    if cache is not None and hasattr(cache, "stats_dict"):
        cache_stats = cache.stats_dict()
    cache_block = {
        "hits": result.cache_hits,
        "misses": result.cache_misses,
        "hit_rate": round(result.hit_rate, 6),
        **cache_stats,
    }

    definitions = _definition_tokens(result.model_specs)

    return RunManifest(
        kind=kind,
        label=label,
        created=time.time(),
        run_id=run_id,
        argv=list(argv or []),
        git=git_describe(),
        seed=seed,
        suite={
            "items": len(result.item_names),
            "digest": _suite_digest(result.item_names),
            **(extra or {}),
        },
        models=definitions,
        verdicts={
            "cells": cells,
            "digest": _verdict_digest(result.cells),
            "errors": len(result.errors()),
            "diffs": diffs,
        },
        cache=cache_block,
        elapsed_seconds=round(elapsed, 6),
        rates={
            "cells_per_second": round(cells / elapsed, 3) if elapsed else 0.0,
            "computed_cells_per_second": round(
                result.cache_misses / elapsed, 3
            )
            if elapsed
            else 0.0,
        },
        stages=stages,
        counters=dict(trace_snap.get("counters", {})),
        model_latency=latency,
    )


def from_fuzz(
    report,
    cache=None,
    argv: list[str] | None = None,
    snapshot: dict | None = None,
    extra: dict | None = None,
) -> RunManifest:
    """Build a manifest from a :class:`FuzzReport`, merging the cells of
    every campaign the fuzz run dispatched (main, machine, brute);
    ``extra`` merges into the ``suite`` block."""
    from . import telemetry

    if snapshot is None:
        snapshot = telemetry.snapshot()
    trace_snap = (snapshot or {}).get("trace", {})
    metrics_snap = (snapshot or {}).get("metrics", {})

    cells: dict = {}
    names: set = set()
    misses = 0
    for campaign in report.campaigns:
        cells.update(campaign.cells)
        names.update(campaign.item_names)
        misses += campaign.cache_misses
    hits = report.cache_hits
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    cache_stats = {}
    if cache is not None and hasattr(cache, "stats_dict"):
        cache_stats = cache.stats_dict()
    elapsed = report.elapsed

    return RunManifest(
        kind="fuzz",
        label=f"{report.arch}:{report.budget}",
        created=time.time(),
        argv=list(argv or []),
        git=git_describe(),
        seed=report.seed,
        suite={
            "items": report.n_items,
            "digest": _suite_digest(sorted(names)),
            **(extra or {}),
        },
        models=_definition_tokens(report.checkers),
        verdicts={
            "cells": len(cells),
            "digest": _verdict_digest(cells),
            "errors": len(report.errors),
            "diffs": len(report.disagreements),
        },
        cache={
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hit_rate, 6),
            **cache_stats,
        },
        elapsed_seconds=round(elapsed, 6),
        rates={
            "cells_per_second": round(len(cells) / elapsed, 3)
            if elapsed
            else 0.0,
        },
        stages=_stages_from(trace_snap),
        counters=dict(trace_snap.get("counters", {})),
        model_latency=_latency_from(metrics_snap),
    )


def from_rates(
    kind: str,
    label: str,
    rates: dict,
    elapsed: float = 0.0,
    stages: dict | None = None,
    counters: dict | None = None,
    argv: list[str] | None = None,
    extra: dict | None = None,
) -> RunManifest:
    """A lightweight manifest for benchmark artifacts: named throughput
    rates plus optional stage/counter breakdowns (``extra`` lands in
    ``suite`` for scale context)."""
    return RunManifest(
        kind=kind,
        label=label,
        created=time.time(),
        argv=list(argv or []),
        git=git_describe(),
        suite=dict(extra or {}),
        elapsed_seconds=round(elapsed, 6),
        rates={k: round(float(v), 6) for k, v in rates.items()},
        stages=dict(stages or {}),
        counters=dict(counters or {}),
    )
