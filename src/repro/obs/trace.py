"""Structured span tracing for the checking pipeline.

The tracer generalizes the old ``core.profiling.Profiler`` (which it
replaces — that module is now a compatibility shim over this one) from
four fixed stage timers into hierarchical *spans*:

* every span has a name, optional attributes (``item``, ``model``,
  ``token`` on the engine's per-cell spans), a wall-clock start, a total
  duration, and a *self* duration excluding enclosed spans — so the
  per-name aggregates still sum to the instrumented wall clock with no
  double counting, exactly like the old profiler;
* completed spans are kept in a bounded in-memory ring buffer and,
  when a sink path is given, appended to a schema-versioned JSONL
  *trace sidecar* (`{"schema": "repro.trace", "version": 1}` header
  line, one span object per line);
* the per-name aggregates, counters, and (optionally) the ring are
  serializable via :meth:`Tracer.snapshot` and re-combinable via
  :meth:`Tracer.merge` — this is how ProcessPool workers ship their
  observations back to the campaign parent.

Tracing is off by default and costs one module-attribute read per
instrumented site when off.  Hot paths guard with::

    if trace.ACTIVE is not None:
        with trace.stage("expansion"):
            ...work...
    else:
        ...work...
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "Tracer",
    "ACTIVE",
    "stage",
    "count",
    "enable",
    "disable",
]

#: Schema identifier/version stamped on trace sidecars and snapshots.
TRACE_SCHEMA = "repro.trace"
TRACE_VERSION = 1

#: Default ring-buffer capacity (completed spans kept in memory).
DEFAULT_RING = 4096

#: Cap on spans shipped inside one snapshot (worker → parent payloads
#: stay bounded however long the worker ran).
SNAPSHOT_SPANS = 2048


class Tracer:
    """Accumulates spans, per-name self-time aggregates, and counters.

    The aggregate surface (:attr:`seconds`, :attr:`calls`,
    :attr:`counters`, :meth:`report`) is the old ``Profiler`` API —
    ``repro campaign --profile`` renders from it unchanged.
    """

    def __init__(
        self,
        ring: int = DEFAULT_RING,
        sink: "str | Path | None" = None,
    ) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self.counters: dict[str, int] = {}
        self.spans: deque = deque(maxlen=ring)
        # [name, attrs, span_id, wall_start, perf_start, inner_seconds]
        self._stack: list[list] = []
        self._next_id = 1
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_handle = None

    # -- recording -------------------------------------------------------

    def push(self, name: str, attrs: dict | None = None) -> None:
        span_id = self._next_id
        self._next_id += 1
        self._stack.append(
            [name, attrs, span_id, time.time(), time.perf_counter(), 0.0]
        )

    def pop(self) -> None:
        name, attrs, span_id, wall, start, inner = self._stack.pop()
        total = time.perf_counter() - start
        self.seconds[name] = self.seconds.get(name, 0.0) + (total - inner)
        self.calls[name] = self.calls.get(name, 0) + 1
        parent = self._stack[-1][2] if self._stack else None
        if self._stack:
            self._stack[-1][5] += total
        record = {
            "id": span_id,
            "parent": parent,
            "name": name,
            "t0": round(wall, 6),
            "secs": round(total, 9),
            "self": round(total - inner, 9),
        }
        if attrs:
            record["attrs"] = attrs
        self.spans.append(record)
        if self._sink_path is not None:
            self._write(record)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def add_span(
        self,
        name: str,
        seconds: float,
        attrs: dict | None = None,
        self_seconds: float | None = None,
    ) -> None:
        """Record an already-measured span without a push/pop pairing.

        Batched sweeps decide many cells inside one kernel call and
        apportion its wall clock across them afterwards; this records
        one such synthetic span into the ring, the sidecar, and the
        aggregates.  ``self_seconds`` defaults to ``seconds``; pass
        ``0.0`` when the span's time is already accounted for by real
        stage spans recorded during the same work (keeping the
        self-time partition of the instrumented wall clock exact).
        """
        span_id = self._next_id
        self._next_id += 1
        own = seconds if self_seconds is None else self_seconds
        self.seconds[name] = self.seconds.get(name, 0.0) + own
        self.calls[name] = self.calls.get(name, 0) + 1
        record = {
            "id": span_id,
            "parent": None,
            "name": name,
            "t0": round(time.time(), 6),
            "secs": round(seconds, 9),
            "self": round(own, 9),
        }
        if attrs:
            record["attrs"] = attrs
        self.spans.append(record)
        if self._sink_path is not None:
            self._write(record)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        """Record one span around a block (attributes are free-form)."""
        self.push(name, attrs or None)
        try:
            yield
        finally:
            self.pop()

    # -- sidecar ---------------------------------------------------------

    def _write(self, record: dict) -> None:
        if self._sink_handle is None:
            self._sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink_handle = self._sink_path.open("a", encoding="utf-8")
            header = {"schema": TRACE_SCHEMA, "version": TRACE_VERSION}
            self._sink_handle.write(json.dumps(header) + "\n")
        self._sink_handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def close(self) -> None:
        """Flush and close the sidecar handle (reopened by the next span)."""
        if self._sink_handle is not None:
            self._sink_handle.close()
            self._sink_handle = None

    @property
    def sink_path(self) -> "Path | None":
        return self._sink_path

    # -- serialization ---------------------------------------------------

    def snapshot(self, spans: bool = True) -> dict:
        """A JSON-serializable view of everything recorded so far.

        Snapshots are *merge-additive*: combining the snapshots of N
        worker tracers via :meth:`merge` yields the aggregates one
        tracer would have recorded for all the work.
        """
        snap = {
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "seconds": {k: round(v, 9) for k, v in self.seconds.items()},
            "calls": dict(self.calls),
            "counters": dict(self.counters),
        }
        if spans:
            snap["spans"] = list(self.spans)[-SNAPSHOT_SPANS:]
        return snap

    def merge(self, snap: dict | None) -> None:
        """Fold a worker snapshot into this tracer's aggregates."""
        if not snap:
            return
        if snap.get("schema") not in (None, TRACE_SCHEMA):
            raise ValueError(f"not a trace snapshot: {snap.get('schema')!r}")
        for name, secs in snap.get("seconds", {}).items():
            self.seconds[name] = self.seconds.get(name, 0.0) + secs
        for name, n in snap.get("calls", {}).items():
            self.calls[name] = self.calls.get(name, 0) + n
        for name, n in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + n
        for record in snap.get("spans", ()):
            self.spans.append(record)
            if self._sink_path is not None:
                self._write(record)

    # -- reporting -------------------------------------------------------

    def report(self) -> str:
        """A per-stage breakdown table (self time, calls, share) —
        byte-compatible with the old profiler's ``--profile`` output."""
        total = sum(self.seconds.values())
        lines = ["stage        seconds     calls   share", "-" * 39]
        order = ("expansion", "analysis", "axioms", "cache")
        names = [n for n in order if n in self.seconds] + sorted(
            set(self.seconds) - set(order)
        )
        for name in names:
            secs = self.seconds[name]
            share = 100 * secs / total if total else 0.0
            lines.append(
                f"{name:<10} {secs:>9.4f} {self.calls[name]:>9} {share:>6.1f}%"
            )
        lines.append(f"{'total':<10} {total:>9.4f}")
        for name in sorted(self.counters):
            lines.append(f"{name}: {self.counters[name]}")
        return "\n".join(lines)


#: The active tracer, or ``None`` when tracing is off.  This is the
#: one-attribute-read guard every instrumented hot path checks.
ACTIVE: Tracer | None = None


def enable(
    ring: int = DEFAULT_RING, sink: "str | Path | None" = None
) -> Tracer:
    """Install and return a fresh tracer (prefer ``obs.enable`` which
    also installs the metrics registry)."""
    global ACTIVE
    ACTIVE = Tracer(ring=ring, sink=sink)
    return ACTIVE


def disable() -> "Tracer | None":
    """Uninstall the active tracer (closing its sidecar) and return it."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    if tracer is not None:
        tracer.close()
    return tracer


@contextmanager
def stage(name: str, **attrs) -> Iterator[None]:
    """Time one pipeline span (no-op when tracing is off)."""
    tracer = ACTIVE
    if tracer is None:
        yield
        return
    tracer.push(name, attrs or None)
    try:
        yield
    finally:
        tracer.pop()


def count(name: str, n: int = 1) -> None:
    """Bump a named counter (no-op when tracing is off)."""
    tracer = ACTIVE
    if tracer is not None:
        tracer.count(name, n)
