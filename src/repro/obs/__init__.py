"""Telemetry for the checking pipeline: tracing, metrics, manifests.

The subsystem has four layers, all off by default behind one switch:

* :mod:`~repro.obs.trace` — hierarchical spans with self-time
  attribution over the pipeline stages (expansion / analysis / axioms /
  cache) plus per-cell spans, an in-memory ring buffer, and optional
  schema-versioned JSONL trace sidecars;
* :mod:`~repro.obs.metrics` — mergeable counters, gauges, and
  geometric-bucket histograms (per-model cell-latency percentiles);
* :mod:`~repro.obs.telemetry` — the bundle: one ``enable``/``disable``
  pair installing both, worker snapshot/merge for ProcessPool
  aggregation, and IR-evaluator counter deltas;
* :mod:`~repro.obs.manifest` / :mod:`~repro.obs.stats` — persistent
  schema-versioned run manifests under ``.repro-cache/runs/`` and the
  ``repro stats`` list/show/diff reader over them.

Typical use::

    from repro import obs

    obs.enable()                       # or enable(sink="trace.jsonl")
    result = run_campaign(suite, models, jobs=4)   # workers report back
    manifest = obs.manifest.from_campaign(result, label="corpus")
    obs.manifest.write_manifest(manifest)
    obs.disable()

See ``README.md`` in this directory for the full tour.
"""

from . import manifest, metrics, trace
from .telemetry import (
    Telemetry,
    active,
    collect,
    disable,
    enable,
    merge_snapshot,
    reset_worker_state,
    snapshot,
)

__all__ = [
    "Telemetry",
    "active",
    "collect",
    "disable",
    "enable",
    "manifest",
    "merge_snapshot",
    "metrics",
    "reset_worker_state",
    "snapshot",
    "trace",
]
